package sm

import "fmt"

// This file implements the three constructive conversions of Theorem 3.7:
//
//	Mod-Thresh ⊆ Parallel   (Lemma 3.8)
//	Parallel   ⊆ Sequential (Lemma 3.5)
//	Sequential ⊆ Mod-Thresh (Lemma 3.9)
//
// Each conversion returns a program computing the same function; the
// constructions follow the paper's proofs exactly, including their
// (possibly exponential) size blowups, which experiment E11 measures.

// ParallelToSequential implements Lemma 3.5: W' = W ∪ {NIL}, w0 = NIL,
// p'(NIL, q) = α(q), p'(w, q) = p(α(q), w).
func ParallelToSequential(p *Parallel) (*Sequential, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := p.NumW()
	nil_ := w // index of the NIL state
	s := &Sequential{
		NumQ: p.NumQ,
		NumR: p.NumR,
		W0:   nil_,
		P:    make([][]int, w+1),
		Beta: make([]int, w+1),
	}
	for wi := 0; wi < w; wi++ {
		row := make([]int, p.NumQ)
		for q := 0; q < p.NumQ; q++ {
			row[q] = p.P[p.Alpha[q]][wi]
		}
		s.P[wi] = row
		s.Beta[wi] = p.Beta[wi]
	}
	nilRow := make([]int, p.NumQ)
	for q := 0; q < p.NumQ; q++ {
		nilRow[q] = p.Alpha[q]
	}
	s.P[nil_] = nilRow
	// β(NIL) is never consulted on Q^+ inputs; any value is fine.
	s.Beta[nil_] = 0
	return s, nil
}

// modThreshParams extracts, per input state i, the modulus M_i (lcm of all
// moduli of mod atoms mentioning i, with 1) and the threshold bound T_i
// (max over thresh atoms mentioning i, with 1), as defined in Lemma 3.8.
func modThreshParams(m *ModThresh) (mods, threshes []int) {
	mods = make([]int, m.NumQ)
	threshes = make([]int, m.NumQ)
	for i := range mods {
		mods[i] = 1
		threshes[i] = 1
	}
	for _, c := range m.Clauses {
		c.Cond.visit(func(atom Prop) {
			switch a := atom.(type) {
			case ModAtom:
				mods[a.State] = lcm(mods[a.State], a.Mod)
			case ThreshAtom:
				if a.T > threshes[a.State] {
					threshes[a.State] = a.T
				}
			}
		})
	}
	return mods, threshes
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// ModThreshToParallel implements Lemma 3.8. The working state packs, for
// each input state i, a counter a_i ∈ Z_{M_i} and a saturating counter
// b_i ∈ {0..T_i} (value T_i playing the role of ∞: every atom "μ_i < t"
// with t <= T_i is decided by min(μ_i, T_i)). α injects unit vectors and p
// adds componentwise; β decodes the counters and runs the clause cascade.
func ModThreshToParallel(m *ModThresh) (*Parallel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	mods, threshes := modThreshParams(m)
	// Mixed-radix encoding of the working state: per state i a pair
	// (a_i < M_i, b_i <= T_i).
	radix := make([]int, 0, 2*m.NumQ)
	for i := 0; i < m.NumQ; i++ {
		radix = append(radix, mods[i], threshes[i]+1)
	}
	total := 1
	for _, r := range radix {
		if total > 1<<22/r {
			return nil, fmt.Errorf("sm: ModThreshToParallel working-state space too large (> 2^22)")
		}
		total *= r
	}
	encode := func(digits []int) int {
		code := 0
		for i := len(digits) - 1; i >= 0; i-- {
			code = code*radix[i] + digits[i]
		}
		return code
	}
	decode := func(code int) []int {
		digits := make([]int, len(radix))
		for i := 0; i < len(radix); i++ {
			digits[i] = code % radix[i]
			code /= radix[i]
		}
		return digits
	}

	p := &Parallel{
		NumQ:  m.NumQ,
		NumR:  m.NumR,
		Alpha: make([]int, m.NumQ),
		P:     make([][]int, total),
		Beta:  make([]int, total),
	}
	for q := 0; q < m.NumQ; q++ {
		digits := make([]int, len(radix))
		digits[2*q] = 1 % mods[q] // Dirac delta, reduced mod M_q
		if threshes[q] >= 1 {
			digits[2*q+1] = 1
		}
		p.Alpha[q] = encode(digits)
	}
	for w1 := 0; w1 < total; w1++ {
		d1 := decode(w1)
		row := make([]int, total)
		for w2 := 0; w2 < total; w2++ {
			d2 := decode(w2)
			sum := make([]int, len(radix))
			for i := 0; i < m.NumQ; i++ {
				sum[2*i] = (d1[2*i] + d2[2*i]) % mods[i]
				b := d1[2*i+1] + d2[2*i+1]
				if b > threshes[i] {
					b = threshes[i] // saturate at "∞"
				}
				sum[2*i+1] = b
			}
			row[w2] = encode(sum)
		}
		p.P[w1] = row
		// β: run the clause cascade with each atom decided from the
		// packed counters — the mod part via the a_i counter and the
		// thresh part via the saturating b_i counter.
		p.Beta[w1] = evalWithCounters(m, d1)
	}
	return p, nil
}

// evalWithCounters runs the clause cascade where each atom is decided from
// the packed counters rather than a true multiplicity vector.
func evalWithCounters(m *ModThresh, digits []int) int {
	evalProp := func(p Prop) bool {
		var rec func(p Prop) bool
		rec = func(p Prop) bool {
			switch a := p.(type) {
			case ModAtom:
				// a_i holds μ_i mod M_i and a.Mod divides M_i.
				return digits[2*a.State]%a.Mod == a.Rem%a.Mod
			case ThreshAtom:
				// b_i = min(μ_i, T_i) and a.T <= T_i, so μ_i < T iff b_i < T.
				return digits[2*a.State+1] < a.T
			case Not:
				return !rec(a.P)
			case And:
				for _, sub := range a.Ps {
					if !rec(sub) {
						return false
					}
				}
				return true
			case Or:
				for _, sub := range a.Ps {
					if rec(sub) {
						return true
					}
				}
				return false
			default:
				panic(fmt.Sprintf("sm: unknown proposition type %T", p))
			}
		}
		return rec(p)
	}
	for _, c := range m.Clauses {
		if evalProp(c.Cond) {
			return c.Result
		}
	}
	return m.Default
}

// iterateStructure finds the eventually-periodic structure of the iterates
// g_j^{(z)}(w0) where g_j(x) = P[x][j]: the least t_j and m_j >= 1 such
// that z1, z2 >= t_j and z1 ≡ z2 (mod m_j) imply equal iterates.
func iterateStructure(s *Sequential, j int) (tail, period int) {
	seen := map[int]int{} // state -> first index where g_j^{(index)}(w0) = state
	w := s.W0
	for idx := 0; ; idx++ {
		if first, ok := seen[w]; ok {
			return first, idx - first
		}
		seen[w] = idx
		w = s.P[w][j]
	}
}

// SequentialToModThresh implements Lemma 3.9. For each input state j it
// finds the tail t_j and period m_j of the iterates of g_j on w0, then
// enumerates all Π_j (t_j + m_j) equivalence-class combinations, emitting
// one conjunction clause per combination whose result is the sequential
// program's output on a representative input. The all-zero combination
// corresponds to the (excluded) empty input and is skipped.
func SequentialToModThresh(s *Sequential) (*ModThresh, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	numQ := s.NumQ
	tails := make([]int, numQ)
	periods := make([]int, numQ)
	numClasses := make([]int, numQ)
	totalClauses := 1
	for j := 0; j < numQ; j++ {
		tails[j], periods[j] = iterateStructure(s, j)
		numClasses[j] = tails[j] + periods[j]
		if totalClauses > 1<<22/numClasses[j] {
			return nil, fmt.Errorf("sm: SequentialToModThresh clause count too large (> 2^22)")
		}
		totalClauses *= numClasses[j]
	}

	m := &ModThresh{NumQ: numQ, NumR: s.NumR}

	// classAtom returns the proposition pinning μ_j to its class c, and a
	// representative multiplicity for the class. Classes 0..t_j-1 are the
	// singletons {c}; classes t_j..t_j+m_j-1 are the residue classes
	// {n >= t_j : n ≡ rep (mod m_j)} with rep = the class's smallest member.
	classAtom := func(j, c int) (Prop, int) {
		if c < tails[j] {
			// Equation (4): μ_j < c+1 ∧ ¬(μ_j < c). For c = 0 the second
			// conjunct "¬(μ_j < 0)" is vacuously true and is omitted.
			if c == 0 {
				return ThreshAtom{State: j, T: 1}, 0
			}
			return And{Ps: []Prop{
				ThreshAtom{State: j, T: c + 1},
				Not{P: ThreshAtom{State: j, T: c}},
			}}, c
		}
		// Equation (5): ¬(μ_j < t_j) ∧ μ_j ≡ rep (mod m_j).
		rep := c // smallest member >= t_j in this residue class
		props := []Prop{ModAtom{State: j, Rem: rep % periods[j], Mod: periods[j]}}
		if tails[j] > 0 {
			props = append([]Prop{Not{P: ThreshAtom{State: j, T: tails[j]}}}, props...)
		}
		return And{Ps: props}, rep
	}

	combo := make([]int, numQ)
	var rec func(j int)
	rec = func(j int) {
		if j == numQ {
			props := make([]Prop, 0, numQ)
			rep := make([]int, numQ)
			total := 0
			for i := 0; i < numQ; i++ {
				p, r := classAtom(i, combo[i])
				props = append(props, p)
				rep[i] = r
				total += r
			}
			if total == 0 {
				// Every class's smallest member is 0. If some class is a
				// residue class it also contains larger members (the next
				// being its period), so the combination covers nonempty
				// inputs: bump that representative. If all classes are the
				// singleton {0}, only the (excluded) empty input matches.
				bumped := false
				for i := 0; i < numQ && !bumped; i++ {
					if combo[i] >= tails[i] {
						rep[i] += periods[i]
						total += periods[i]
						bumped = true
					}
				}
				if !bumped {
					return // empty input only: unreachable on Q^+
				}
			}
			m.Clauses = append(m.Clauses, Clause{
				Cond:   And{Ps: props},
				Result: s.Eval(SeqFromMu(rep)),
			})
			return
		}
		for c := 0; c < numClasses[j]; c++ {
			combo[j] = c
			rec(j + 1)
		}
	}
	rec(0)

	// Use the final clause as the default arm (Definition 3.6 has c-1
	// conditions and c results).
	if len(m.Clauses) > 0 {
		last := m.Clauses[len(m.Clauses)-1]
		m.Clauses = m.Clauses[:len(m.Clauses)-1]
		m.Default = last.Result
	}
	return m, nil
}

// SequentialToParallel composes Lemmas 3.9 and 3.8, completing the cycle
// Sequential → Mod-Thresh → Parallel.
func SequentialToParallel(s *Sequential) (*Parallel, error) {
	mt, err := SequentialToModThresh(s)
	if err != nil {
		return nil, err
	}
	return ModThreshToParallel(mt)
}

// ModThreshToSequential composes Lemmas 3.8 and 3.5.
func ModThreshToSequential(m *ModThresh) (*Sequential, error) {
	p, err := ModThreshToParallel(m)
	if err != nil {
		return nil, err
	}
	return ParallelToSequential(p)
}
