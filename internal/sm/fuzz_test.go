package sm

import (
	"testing"
)

// Fuzz targets for the Theorem 3.7 conversion round-trips: arbitrary
// bytes decode to small programs, which then ride the same conversion
// cycles the bounded model checker (internal/mc) verifies exhaustively —
// fuzzing extends that coverage to program shapes outside the enumerated
// bounds (more states, larger moduli and thresholds). Seed corpora live
// under testdata/fuzz; run with
//
//	go test ./internal/sm -fuzz FuzzSequentialRoundTrip
//	go test ./internal/sm -fuzz FuzzModThreshRoundTrip

// decodeSequential derives a small sequential program from fuzz bytes:
// header (alphabet sizes) then transition table, outputs, start state.
func decodeSequential(data []byte) (*Sequential, bool) {
	if len(data) < 4 {
		return nil, false
	}
	numQ := int(data[0])%2 + 1 // 1..2
	numW := int(data[1])%4 + 1 // 1..4
	numR := int(data[2])%3 + 1 // 1..3
	need := 4 + numW*numQ + numW
	if len(data) < need {
		return nil, false
	}
	s := &Sequential{NumQ: numQ, NumR: numR, W0: int(data[3]) % numW, P: make([][]int, numW), Beta: make([]int, numW)}
	i := 4
	for w := 0; w < numW; w++ {
		s.P[w] = make([]int, numQ)
		for q := 0; q < numQ; q++ {
			s.P[w][q] = int(data[i]) % numW
			i++
		}
	}
	for w := 0; w < numW; w++ {
		s.Beta[w] = int(data[i]) % numR
		i++
	}
	return s, true
}

// decodeModThresh derives a small mod-thresh program from fuzz bytes:
// header, then per-clause (atom kind, state, parameter, negation, result).
func decodeModThresh(data []byte) (*ModThresh, bool) {
	if len(data) < 3 {
		return nil, false
	}
	numQ := int(data[0])%2 + 1 // 1..2
	numR := int(data[1])%3 + 1 // 1..3
	nClauses := int(data[2]) % 4
	need := 3 + 5*nClauses + 1
	if len(data) < need {
		return nil, false
	}
	m := &ModThresh{NumQ: numQ, NumR: numR}
	i := 3
	for c := 0; c < nClauses; c++ {
		state := int(data[i]) % numQ
		var p Prop
		if data[i+1]%2 == 0 {
			p = ThreshAtom{State: state, T: int(data[i+2])%4 + 1} // t in 1..4
		} else {
			mod := int(data[i+2])%3 + 2 // m in 2..4
			p = ModAtom{State: state, Rem: int(data[i+1]/2) % mod, Mod: mod}
		}
		if data[i+3]%2 == 1 {
			p = Not{P: p}
		}
		m.Clauses = append(m.Clauses, Clause{Cond: p, Result: int(data[i+4]) % numR})
		i += 5
	}
	m.Default = int(data[i]) % numR
	return m, true
}

// FuzzSequentialRoundTrip checks, for every decodable program: the exact
// symmetry checker agrees with brute force (length 2n suffices — n-1
// letters to reach a state, 2 to swap, n-1 to distinguish), and every
// symmetric program survives the sequential -> mod-thresh -> parallel ->
// sequential cycle with its function intact.
func FuzzSequentialRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 1, 0, 1, 0, 0, 1})                   // 2-state OR-like program
	f.Add([]byte{1, 1, 1, 0, 1, 1, 0, 0, 0, 1})                   // parity
	f.Add([]byte{0, 2, 0, 0, 1, 2, 2, 0, 1, 2})                   // 3-state counter
	f.Add([]byte{1, 3, 2, 1, 1, 2, 3, 0, 2, 1, 0, 1, 2, 0, 1, 2}) // 4-state, 2 letters
	f.Fuzz(func(t *testing.T, data []byte) {
		s, ok := decodeSequential(data)
		if !ok {
			t.Skip()
		}
		n := len(s.P)
		exact := CheckSequential(s) == nil
		if brute := BruteCheckSequential(s, 2*n) == nil; exact != brute {
			t.Fatalf("checker mismatch: exact=%v brute=%v for %+v", exact, brute, s)
		}
		if !exact {
			return
		}
		mt, err := SequentialToModThresh(s)
		if err != nil {
			t.Fatalf("SequentialToModThresh(%+v): %v", s, err)
		}
		if err := Equivalent(s, mt, s.NumQ, 6); err != nil {
			t.Fatalf("seq != mod-thresh: %v for %+v", err, s)
		}
		p, err := ModThreshToParallel(mt)
		if err != nil {
			t.Fatalf("ModThreshToParallel: %v for %+v", err, s)
		}
		s2, err := ParallelToSequential(p)
		if err != nil {
			t.Fatalf("ParallelToSequential: %v for %+v", err, s)
		}
		if err := Equivalent(s, s2, s.NumQ, 6); err != nil {
			t.Fatalf("round trip changed function: %v for %+v", err, s)
		}
	})
}

// FuzzModThreshRoundTrip checks that every decodable mod-thresh program
// survives mod-thresh -> parallel -> sequential with its function intact
// and with the converted programs accepted by the exact checkers.
func FuzzModThreshRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1})                               // clause-free, default only
	f.Add([]byte{1, 1, 1, 0, 0, 2, 0, 1, 0})                // one threshold clause
	f.Add([]byte{1, 1, 1, 1, 1, 2, 1, 0, 0})                // one mod clause, negated
	f.Add([]byte{1, 2, 2, 0, 1, 1, 0, 1, 1, 3, 2, 1, 0, 1}) // two mixed clauses
	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := decodeModThresh(data)
		if !ok {
			t.Skip()
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder produced invalid program %+v: %v", m, err)
		}
		p, err := ModThreshToParallel(m)
		if err != nil {
			t.Skip() // counter space over the conversion's size guard
		}
		if err := CheckParallel(p); err != nil {
			t.Fatalf("converted parallel not SM: %v for %+v", err, m)
		}
		if err := Equivalent(m, p, m.NumQ, 5); err != nil {
			t.Fatalf("mod-thresh != parallel: %v for %+v", err, m)
		}
		s, err := ParallelToSequential(p)
		if err != nil {
			t.Fatalf("ParallelToSequential: %v for %+v", err, m)
		}
		if err := CheckSequential(s); err != nil {
			t.Fatalf("converted sequential not SM: %v for %+v", err, m)
		}
		if err := Equivalent(m, s, m.NumQ, 5); err != nil {
			t.Fatalf("mod-thresh != sequential: %v for %+v", err, m)
		}
	})
}
