package sm

// This file provides canonical SM functions from the paper, expressed as
// mod-thresh programs. They double as fixtures for the conversion tests and
// as building blocks for the FSSGA algorithms.

// AnyPresent returns the mod-thresh program computing "1 if state q occurs
// among the inputs, else 0" — the atom ¬(μ_q < 1).
func AnyPresent(numQ, q int) *ModThresh {
	return &ModThresh{
		NumQ: numQ,
		NumR: 2,
		Clauses: []Clause{
			{Cond: Not{P: ThreshAtom{State: q, T: 1}}, Result: 1},
		},
		Default: 0,
	}
}

// AtLeast returns the program computing "1 if μ_q >= k, else 0".
func AtLeast(numQ, q, k int) *ModThresh {
	return &ModThresh{
		NumQ: numQ,
		NumR: 2,
		Clauses: []Clause{
			{Cond: Not{P: ThreshAtom{State: q, T: k}}, Result: 1},
		},
		Default: 0,
	}
}

// Exactly returns the program computing "1 if μ_q == k, else 0" —
// (μ_q < k+1) ∧ ¬(μ_q < k), Equation (4) of Lemma 3.9.
func Exactly(numQ, q, k int) *ModThresh {
	var cond Prop
	if k == 0 {
		cond = ThreshAtom{State: q, T: 1}
	} else {
		cond = And{Ps: []Prop{
			ThreshAtom{State: q, T: k + 1},
			Not{P: ThreshAtom{State: q, T: k}},
		}}
	}
	return &ModThresh{
		NumQ:    numQ,
		NumR:    2,
		Clauses: []Clause{{Cond: cond, Result: 1}},
		Default: 0,
	}
}

// Parity returns the program computing μ_q mod 2.
func Parity(numQ, q int) *ModThresh {
	return &ModThresh{
		NumQ: numQ,
		NumR: 2,
		Clauses: []Clause{
			{Cond: ModAtom{State: q, Rem: 1, Mod: 2}, Result: 1},
		},
		Default: 0,
	}
}

// CountMod returns the program computing μ_q mod m (results 0..m-1).
func CountMod(numQ, q, m int) *ModThresh {
	mt := &ModThresh{NumQ: numQ, NumR: m}
	for r := 1; r < m; r++ {
		mt.Clauses = append(mt.Clauses, Clause{
			Cond:   ModAtom{State: q, Rem: r, Mod: m},
			Result: r,
		})
	}
	mt.Default = 0
	return mt
}

// CappedCount returns the program computing min(μ_q, cap) (results 0..cap).
func CappedCount(numQ, q, cap int) *ModThresh {
	mt := &ModThresh{NumQ: numQ, NumR: cap + 1}
	for k := 0; k < cap; k++ {
		var cond Prop
		if k == 0 {
			cond = ThreshAtom{State: q, T: 1}
		} else {
			cond = ThreshAtom{State: q, T: k + 1}
		}
		mt.Clauses = append(mt.Clauses, Clause{Cond: cond, Result: k})
	}
	mt.Default = cap
	return mt
}

// BitwiseOR returns the program computing the bitwise OR of all inputs,
// where the alphabet is the 2^bits masks. This is the per-activation update
// of the Flajolet–Martin census (Section 1): v.m := v.m OR (OR of
// neighbours). It is a semi-lattice function, hence SM.
//
// The construction: output has bit b set iff some input has bit b set,
// which is the disjunction over states with bit b of ¬(μ_state < 1). The
// clause order enumerates masks from largest to smallest so the first
// matching clause is the exact OR.
func BitwiseOR(bits int) *ModThresh {
	if bits < 1 || bits > 8 {
		panic("sm: BitwiseOR supports 1..8 bits")
	}
	n := 1 << uint(bits)
	mt := &ModThresh{NumQ: n, NumR: n}
	// For mask m (descending), the condition is: for each bit set in m,
	// some input state has that bit; for each bit clear in m, no input
	// state has that bit. Equivalently the OR equals exactly m.
	for mask := n - 1; mask >= 1; mask-- {
		var conj []Prop
		for b := 0; b < bits; b++ {
			// states with bit b set
			var withBit []Prop
			for q := 0; q < n; q++ {
				if q&(1<<uint(b)) != 0 {
					withBit = append(withBit, Not{P: ThreshAtom{State: q, T: 1}})
				}
			}
			present := Or{Ps: withBit}
			if mask&(1<<uint(b)) != 0 {
				conj = append(conj, present)
			} else {
				conj = append(conj, Not{P: present})
			}
		}
		mt.Clauses = append(mt.Clauses, Clause{Cond: And{Ps: conj}, Result: mask})
	}
	mt.Default = 0
	return mt
}
