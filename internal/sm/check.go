package sm

import (
	"fmt"
	"math/rand"
)

// This file decides whether a candidate program actually computes an SM
// function. Two mechanisms are provided:
//
//   - Brute-force checks that enumerate sequences (and, for parallel
//     programs, combination trees) up to a length bound. These directly
//     instantiate Definitions 3.2 and 3.4 and are used as the reference in
//     tests.
//
//   - Complete algebraic checks based on observational equivalence of
//     working states (Myhill–Nerode style partition refinement). These are
//     exact: CheckSequential accepts iff the program is an SM program for
//     inputs of *every* length, by verifying that processing commutes up to
//     observational equivalence at every reachable working state.
//     CheckParallel likewise verifies commutativity and associativity of
//     the combination on the reachable submonoid.

// CheckSequential reports whether the sequential program computes a
// symmetric function of its inputs (Definition 3.2), for all input lengths.
//
// Method: compute observational equivalence ≡ on working states (w1 ≡ w2
// iff β(w1) = β(w2) and P[w1][q] ≡ P[w2][q] for all q, the coarsest such
// relation). The program is SM iff for every working state w reachable from
// w0 and all inputs q1, q2: P[P[w][q1]][q2] ≡ P[P[w][q2]][q1]. Adjacent
// transpositions generate S_k, and equivalence is preserved by further
// processing, so this is sound and complete.
func CheckSequential(s *Sequential) error {
	if err := s.Validate(); err != nil {
		return err
	}
	class := seqObsClasses(s)
	reach := seqReachable(s)
	for w, ok := range reach {
		if !ok {
			continue
		}
		for q1 := 0; q1 < s.NumQ; q1++ {
			for q2 := q1 + 1; q2 < s.NumQ; q2++ {
				a := s.P[s.P[w][q1]][q2]
				b := s.P[s.P[w][q2]][q1]
				if class[a] != class[b] {
					return fmt.Errorf("sm: sequential program not symmetric: at reachable state %d, inputs (%d,%d) vs (%d,%d) reach observationally distinct states %d, %d", w, q1, q2, q2, q1, a, b)
				}
			}
		}
	}
	return nil
}

// seqReachable returns the set of working states reachable from w0 by
// processing zero or more inputs.
func seqReachable(s *Sequential) []bool {
	reach := make([]bool, s.NumW())
	stack := []int{s.W0}
	reach[s.W0] = true
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for q := 0; q < s.NumQ; q++ {
			n := s.P[w][q]
			if !reach[n] {
				reach[n] = true
				stack = append(stack, n)
			}
		}
	}
	return reach
}

// seqObsClasses computes observational-equivalence classes of working
// states by Moore partition refinement: initially partitioned by β, then
// refined by successor classes under each input.
func seqObsClasses(s *Sequential) []int {
	n := s.NumW()
	class := make([]int, n)
	copy(class, s.Beta)
	for {
		// Signature = (current class, classes of successors).
		next := make([]int, n)
		index := make(map[string]int)
		for w := 0; w < n; w++ {
			sig := make([]byte, 0, 4*(s.NumQ+1))
			sig = appendInt(sig, class[w])
			for q := 0; q < s.NumQ; q++ {
				sig = appendInt(sig, class[s.P[w][q]])
			}
			key := string(sig)
			id, ok := index[key]
			if !ok {
				id = len(index)
				index[key] = id
			}
			next[w] = id
		}
		if same(class, next) {
			return class
		}
		class = next
	}
}

func appendInt(b []byte, x int) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), ',')
}

func same(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckParallel reports whether the parallel program computes a function
// that is independent of input order and combination tree (Definition 3.4),
// for all input lengths.
//
// Method: let S be the closure of α(Q) under the combination P (the
// reachable working states). Compute the coarsest congruence ≡ such that
// w1 ≡ w2 implies β(w1) = β(w2), P[w1][s] ≡ P[w2][s] and P[s][w1] ≡
// P[s][w2] for every s ∈ S. The program is a parallel SM program iff P is
// commutative and associative on S up to ≡.
func CheckParallel(p *Parallel) error {
	if err := p.Validate(); err != nil {
		return err
	}
	reach := parReachable(p)
	var S []int
	for w, ok := range reach {
		if ok {
			S = append(S, w)
		}
	}
	class := parObsClasses(p, S)
	for _, a := range S {
		for _, b := range S {
			if class[p.P[a][b]] != class[p.P[b][a]] {
				return fmt.Errorf("sm: parallel program not commutative: P[%d][%d]=%d vs P[%d][%d]=%d are observationally distinct", a, b, p.P[a][b], b, a, p.P[b][a])
			}
		}
	}
	for _, a := range S {
		for _, b := range S {
			for _, c := range S {
				l := p.P[p.P[a][b]][c]
				r := p.P[a][p.P[b][c]]
				if class[l] != class[r] {
					return fmt.Errorf("sm: parallel program not associative: (P[%d][%d])·%d = %d vs %d·(P[%d][%d]) = %d are observationally distinct", a, b, c, l, a, b, c, r)
				}
			}
		}
	}
	return nil
}

// parReachable returns the closure of α(Q) under P.
func parReachable(p *Parallel) []bool {
	reach := make([]bool, p.NumW())
	for _, a := range p.Alpha {
		reach[a] = true
	}
	// Closure: repeatedly combine all reachable pairs.
	for changed := true; changed; {
		changed = false
		var members []int
		for w, ok := range reach {
			if ok {
				members = append(members, w)
			}
		}
		for _, a := range members {
			for _, b := range members {
				c := p.P[a][b]
				if !reach[c] {
					reach[c] = true
					changed = true
				}
			}
		}
	}
	return reach
}

// parObsClasses computes the coarsest congruence classes over all working
// states, with contexts drawn from the reachable set S.
func parObsClasses(p *Parallel, S []int) []int {
	n := p.NumW()
	class := make([]int, n)
	copy(class, p.Beta)
	for {
		next := make([]int, n)
		index := make(map[string]int)
		for w := 0; w < n; w++ {
			sig := make([]byte, 0, 4*(2*len(S)+1))
			sig = appendInt(sig, class[w])
			for _, s := range S {
				sig = appendInt(sig, class[p.P[w][s]])
				sig = appendInt(sig, class[p.P[s][w]])
			}
			key := string(sig)
			id, ok := index[key]
			if !ok {
				id = len(index)
				index[key] = id
			}
			next[w] = id
		}
		if same(class, next) {
			return class
		}
		class = next
	}
}

// BruteCheckSequential exhaustively verifies permutation-invariance of the
// sequential program on all inputs of length <= maxLen. It instantiates
// Definition 3.2 directly; adjacent transpositions suffice to generate S_k.
func BruteCheckSequential(s *Sequential, maxLen int) error {
	var err error
	EnumSequences(s.NumQ, maxLen, func(qs []int) {
		if err != nil {
			return
		}
		base := s.Eval(qs)
		for i := 0; i+1 < len(qs); i++ {
			qs[i], qs[i+1] = qs[i+1], qs[i]
			if got := s.Eval(qs); got != base {
				err = fmt.Errorf("sm: sequential not symmetric on %v (swap at %d): %d vs %d", qs, i, got, base)
			}
			qs[i], qs[i+1] = qs[i+1], qs[i]
		}
	})
	return err
}

// BruteCheckParallel exhaustively verifies order- and tree-independence of
// the parallel program on all inputs of length <= maxLen, by evaluating
// with the random-removal process many times per input and with the
// left-fold and balanced trees. maxLen above 6 gets expensive.
func BruteCheckParallel(p *Parallel, maxLen int, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	var err error
	EnumSequences(p.NumQ, maxLen, func(qs []int) {
		if err != nil {
			return
		}
		base := p.Eval(qs)
		if got := p.EvalBalanced(qs); got != base {
			err = fmt.Errorf("sm: parallel tree-dependent on %v: balanced %d vs left %d", qs, got, base)
			return
		}
		for t := 0; t < trials; t++ {
			if got := p.EvalRandomTree(qs, rng); got != base {
				err = fmt.Errorf("sm: parallel order/tree-dependent on %v: random %d vs left %d", qs, got, base)
				return
			}
		}
		// Adjacent transpositions with the left-fold tree.
		for i := 0; i+1 < len(qs); i++ {
			qs[i], qs[i+1] = qs[i+1], qs[i]
			if got := p.Eval(qs); got != base {
				err = fmt.Errorf("sm: parallel not symmetric on %v (swap at %d): %d vs %d", qs, i, got, base)
			}
			qs[i], qs[i+1] = qs[i+1], qs[i]
		}
	})
	return err
}

// Equivalent reports whether two SM functions agree on every input of
// length <= maxLen (over alphabet numQ). Used to cross-validate the
// Theorem 3.7 conversions.
func Equivalent(f, g Func, numQ, maxLen int) error {
	var err error
	EnumMultisets(numQ, maxLen, func(mu []int) {
		if err != nil {
			return
		}
		qs := SeqFromMu(mu)
		if a, b := f.Eval(qs), g.Eval(qs); a != b {
			err = fmt.Errorf("sm: functions differ on %v: %d vs %d", qs, a, b)
		}
	})
	return err
}
