// Package sm implements the symmetric multi-input (SM) finite-state
// function machinery of Pritchard & Vempala (SPAA 2006), Section 3: the
// three equivalent program models for SM functions —
//
//   - Sequential programs (W, w0, p, β): inputs are fed one at a time
//     through a processing function (Definition 3.2);
//   - Parallel programs (W, α, p, β): inputs are injected by α and reduced
//     pairwise in an arbitrary binary combination tree (Definition 3.4);
//   - Mod-Thresh programs: an if/else cascade of propositions built from
//     "μ_i(q) ≡ r (mod m)" and "μ_i(q) < t" atoms (Definition 3.6);
//
// together with the constructive conversions proving all three classes
// equal (Theorem 3.7), and validity checkers that decide whether a given
// program actually computes a symmetric function.
//
// Throughout, the input alphabet is Q = {0, ..., NumQ-1} and the result
// alphabet is R = {0, ..., NumR-1}; working states are {0, ..., |W|-1}.
package sm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Sequential is a sequential program (W, w0, p, β) per Definition 3.2.
// It defines the function q⃗ ↦ β(p(...p(p(w0, q1), q2)..., qk)). The program
// is a valid SM program only if the result is permutation-invariant; use
// CheckSequential to verify.
type Sequential struct {
	NumQ int     // |Q|, input alphabet size
	NumR int     // |R|, result alphabet size
	W0   int     // distinguished start state
	P    [][]int // P[w][q] = next working state
	Beta []int   // Beta[w] = result in 0..NumR-1
}

// NumW returns |W|, the number of working states.
func (s *Sequential) NumW() int { return len(s.P) }

// Size returns the program size |W|·|Q| (transition table entries), used
// for the blowup accounting of E11.
func (s *Sequential) Size() int { return len(s.P) * s.NumQ }

// Validate checks table shapes and ranges.
func (s *Sequential) Validate() error {
	if s.NumQ < 1 || s.NumR < 1 {
		return fmt.Errorf("sm: sequential needs NumQ, NumR >= 1 (got %d, %d)", s.NumQ, s.NumR)
	}
	w := len(s.P)
	if w == 0 {
		return fmt.Errorf("sm: sequential has no working states")
	}
	if s.W0 < 0 || s.W0 >= w {
		return fmt.Errorf("sm: start state %d out of range [0,%d)", s.W0, w)
	}
	if len(s.Beta) != w {
		return fmt.Errorf("sm: Beta has %d entries, want %d", len(s.Beta), w)
	}
	for wi, row := range s.P {
		if len(row) != s.NumQ {
			return fmt.Errorf("sm: P[%d] has %d entries, want %d", wi, len(row), s.NumQ)
		}
		for q, nxt := range row {
			if nxt < 0 || nxt >= w {
				return fmt.Errorf("sm: P[%d][%d] = %d out of range", wi, q, nxt)
			}
		}
	}
	for wi, r := range s.Beta {
		if r < 0 || r >= s.NumR {
			return fmt.Errorf("sm: Beta[%d] = %d out of range [0,%d)", wi, r, s.NumR)
		}
	}
	return nil
}

// Eval runs the program on the nonempty input sequence qs.
func (s *Sequential) Eval(qs []int) int {
	if len(qs) == 0 {
		panic("sm: Sequential.Eval on empty input (SM functions take Q^+)")
	}
	w := s.W0
	for _, q := range qs {
		w = s.P[w][q]
	}
	return s.Beta[w]
}

// Parallel is a parallel program (W, α, p, β) per Definition 3.4. It
// defines the function that injects each input via α and reduces the
// resulting multiset pairwise with p in an arbitrary binary tree. The
// program is a valid SM program only if the result is independent of both
// the input order and the tree shape; use CheckParallel to verify.
type Parallel struct {
	NumQ  int
	NumR  int
	Alpha []int   // Alpha[q] = initial working state for input q
	P     [][]int // P[w1][w2] = combined working state
	Beta  []int
}

// NumW returns |W|.
func (p *Parallel) NumW() int { return len(p.P) }

// Size returns the program size |W|² + |Q| (combination table plus α).
func (p *Parallel) Size() int { return len(p.P)*len(p.P) + p.NumQ }

// Validate checks table shapes and ranges.
func (p *Parallel) Validate() error {
	if p.NumQ < 1 || p.NumR < 1 {
		return fmt.Errorf("sm: parallel needs NumQ, NumR >= 1 (got %d, %d)", p.NumQ, p.NumR)
	}
	w := len(p.P)
	if w == 0 {
		return fmt.Errorf("sm: parallel has no working states")
	}
	if len(p.Alpha) != p.NumQ {
		return fmt.Errorf("sm: Alpha has %d entries, want %d", len(p.Alpha), p.NumQ)
	}
	for q, a := range p.Alpha {
		if a < 0 || a >= w {
			return fmt.Errorf("sm: Alpha[%d] = %d out of range", q, a)
		}
	}
	if len(p.Beta) != w {
		return fmt.Errorf("sm: Beta has %d entries, want %d", len(p.Beta), w)
	}
	for w1, row := range p.P {
		if len(row) != w {
			return fmt.Errorf("sm: P[%d] has %d entries, want %d", w1, len(row), w)
		}
		for w2, nxt := range row {
			if nxt < 0 || nxt >= w {
				return fmt.Errorf("sm: P[%d][%d] = %d out of range", w1, w2, nxt)
			}
		}
	}
	for wi, r := range p.Beta {
		if r < 0 || r >= p.NumR {
			return fmt.Errorf("sm: Beta[%d] = %d out of range [0,%d)", wi, r, p.NumR)
		}
	}
	return nil
}

// Eval evaluates using a left-comb combination tree
// (((α(q1) ⊕ α(q2)) ⊕ α(q3)) ⊕ ...). For a valid parallel SM program every
// tree gives the same answer, so this is the canonical evaluator.
func (p *Parallel) Eval(qs []int) int {
	if len(qs) == 0 {
		panic("sm: Parallel.Eval on empty input (SM functions take Q^+)")
	}
	w := p.Alpha[qs[0]]
	for _, q := range qs[1:] {
		w = p.P[w][p.Alpha[q]]
	}
	return p.Beta[w]
}

// EvalBalanced evaluates with a balanced divide-and-conquer tree, the
// "parallel" reduction shape of Figure 1.
func (p *Parallel) EvalBalanced(qs []int) int {
	if len(qs) == 0 {
		panic("sm: Parallel.EvalBalanced on empty input")
	}
	var reduce func(lo, hi int) int
	reduce = func(lo, hi int) int {
		if hi-lo == 1 {
			return p.Alpha[qs[lo]]
		}
		mid := (lo + hi) / 2
		return p.P[reduce(lo, mid)][reduce(mid, hi)]
	}
	return p.Beta[reduce(0, len(qs))]
}

// EvalRandomTree evaluates with a uniformly random combination order: it
// repeatedly removes two random elements from the working multiset and
// inserts their combination, exactly the process described below
// Definition 3.2. Used by property tests to confirm tree-independence.
func (p *Parallel) EvalRandomTree(qs []int, rng *rand.Rand) int {
	if len(qs) == 0 {
		panic("sm: Parallel.EvalRandomTree on empty input")
	}
	work := make([]int, len(qs))
	for i, q := range qs {
		work[i] = p.Alpha[q]
	}
	for len(work) > 1 {
		i := rng.Intn(len(work))
		w1 := work[i]
		work[i] = work[len(work)-1]
		work = work[:len(work)-1]
		j := rng.Intn(len(work))
		w2 := work[j]
		work[j] = p.P[w1][w2]
	}
	return p.Beta[work[0]]
}

// Prop is a mod-thresh proposition: a boolean combination of mod atoms
// "μ_i(q⃗) ≡ r (mod m)" and thresh atoms "μ_i(q⃗) < t", evaluated against
// the multiplicity vector mu (mu[i] = number of occurrences of state i).
type Prop interface {
	// Eval evaluates the proposition on a multiplicity vector.
	Eval(mu []int) bool
	// Atoms returns the number of atoms in the proposition.
	Atoms() int
	// String renders the proposition in the paper's notation.
	String() string
	// visit calls f on every atom in the proposition.
	visit(f func(atom Prop))
}

// ModAtom is the atom "μ_State(q⃗) ≡ Rem (mod Mod)".
type ModAtom struct {
	State int
	Rem   int
	Mod   int
}

// Eval implements Prop.
func (a ModAtom) Eval(mu []int) bool { return mu[a.State]%a.Mod == a.Rem%a.Mod }

// Atoms implements Prop.
func (a ModAtom) Atoms() int { return 1 }

func (a ModAtom) String() string {
	return fmt.Sprintf("μ%d ≡ %d (mod %d)", a.State, a.Rem, a.Mod)
}

func (a ModAtom) visit(f func(Prop)) { f(a) }

// ThreshAtom is the atom "μ_State(q⃗) < T".
type ThreshAtom struct {
	State int
	T     int
}

// Eval implements Prop.
func (a ThreshAtom) Eval(mu []int) bool { return mu[a.State] < a.T }

// Atoms implements Prop.
func (a ThreshAtom) Atoms() int { return 1 }

func (a ThreshAtom) String() string { return fmt.Sprintf("μ%d < %d", a.State, a.T) }

func (a ThreshAtom) visit(f func(Prop)) { f(a) }

// Not negates a proposition.
type Not struct{ P Prop }

// Eval implements Prop.
func (n Not) Eval(mu []int) bool { return !n.P.Eval(mu) }

// Atoms implements Prop.
func (n Not) Atoms() int { return n.P.Atoms() }

func (n Not) String() string { return "¬(" + n.P.String() + ")" }

func (n Not) visit(f func(Prop)) { n.P.visit(f) }

// And is the conjunction of its operands (true when empty).
type And struct{ Ps []Prop }

// Eval implements Prop.
func (a And) Eval(mu []int) bool {
	for _, p := range a.Ps {
		if !p.Eval(mu) {
			return false
		}
	}
	return true
}

// Atoms implements Prop.
func (a And) Atoms() int {
	n := 0
	for _, p := range a.Ps {
		n += p.Atoms()
	}
	return n
}

func (a And) String() string { return joinProps(a.Ps, " ∧ ") }

func (a And) visit(f func(Prop)) {
	for _, p := range a.Ps {
		p.visit(f)
	}
}

// Or is the disjunction of its operands (false when empty).
type Or struct{ Ps []Prop }

// Eval implements Prop.
func (o Or) Eval(mu []int) bool {
	for _, p := range o.Ps {
		if p.Eval(mu) {
			return true
		}
	}
	return false
}

// Atoms implements Prop.
func (o Or) Atoms() int {
	n := 0
	for _, p := range o.Ps {
		n += p.Atoms()
	}
	return n
}

func (o Or) String() string { return joinProps(o.Ps, " ∨ ") }

func (o Or) visit(f func(Prop)) {
	for _, p := range o.Ps {
		p.visit(f)
	}
}

func joinProps(ps []Prop, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Clause is one "if P then return Result" arm of a mod-thresh program.
type Clause struct {
	Cond   Prop
	Result int
}

// ModThresh is a mod-thresh program (P1..P_{c-1}; r1..r_c) per
// Definition 3.6: clauses are tested in order and the first true condition
// determines the result; Default is r_c. A mod-thresh program is
// automatically an SM function since it reads q⃗ only through the μ_i.
type ModThresh struct {
	NumQ    int
	NumR    int
	Clauses []Clause
	Default int
}

// Size returns the total number of atoms across all clauses (plus one for
// the default arm), the natural size measure for blowup accounting.
func (m *ModThresh) Size() int {
	n := 1
	for _, c := range m.Clauses {
		n += c.Cond.Atoms()
	}
	return n
}

// Validate checks alphabet ranges for every atom and result.
func (m *ModThresh) Validate() error {
	if m.NumQ < 1 || m.NumR < 1 {
		return fmt.Errorf("sm: mod-thresh needs NumQ, NumR >= 1 (got %d, %d)", m.NumQ, m.NumR)
	}
	if m.Default < 0 || m.Default >= m.NumR {
		return fmt.Errorf("sm: default result %d out of range", m.Default)
	}
	var err error
	check := func(atom Prop) {
		if err != nil {
			return
		}
		switch a := atom.(type) {
		case ModAtom:
			if a.State < 0 || a.State >= m.NumQ {
				err = fmt.Errorf("sm: mod atom state %d out of range", a.State)
			} else if a.Mod < 1 {
				err = fmt.Errorf("sm: mod atom modulus %d < 1", a.Mod)
			} else if a.Rem < 0 || a.Rem > a.Mod {
				// The paper allows 0 <= r <= m.
				err = fmt.Errorf("sm: mod atom remainder %d out of [0,%d]", a.Rem, a.Mod)
			}
		case ThreshAtom:
			if a.State < 0 || a.State >= m.NumQ {
				err = fmt.Errorf("sm: thresh atom state %d out of range", a.State)
			} else if a.T < 1 {
				err = fmt.Errorf("sm: thresh atom bound %d < 1", a.T)
			}
		}
	}
	for i, c := range m.Clauses {
		if c.Result < 0 || c.Result >= m.NumR {
			return fmt.Errorf("sm: clause %d result %d out of range", i, c.Result)
		}
		c.Cond.visit(check)
		if err != nil {
			return fmt.Errorf("sm: clause %d: %w", i, err)
		}
	}
	return nil
}

// Multiplicities returns mu with mu[i] = number of occurrences of i in qs.
func Multiplicities(qs []int, numQ int) []int {
	mu := make([]int, numQ)
	for _, q := range qs {
		mu[q]++
	}
	return mu
}

// Eval runs the program on the nonempty input sequence qs.
func (m *ModThresh) Eval(qs []int) int {
	if len(qs) == 0 {
		panic("sm: ModThresh.Eval on empty input (SM functions take Q^+)")
	}
	return m.EvalMu(Multiplicities(qs, m.NumQ))
}

// EvalMu runs the program directly on a multiplicity vector.
func (m *ModThresh) EvalMu(mu []int) int {
	for _, c := range m.Clauses {
		if c.Cond.Eval(mu) {
			return c.Result
		}
	}
	return m.Default
}

// Func is the common interface of the three program models: an SM function
// from Q^+ to R.
type Func interface {
	Eval(qs []int) int
}

// Compile-time checks that all three models satisfy Func.
var (
	_ Func = (*Sequential)(nil)
	_ Func = (*Parallel)(nil)
	_ Func = (*ModThresh)(nil)
)

// EnumSequences calls visit on every sequence over {0..numQ-1} of each
// length in 1..maxLen, in lexicographic order. The slice passed to visit is
// reused; copy it if retained. Used by the exhaustive cross-validators.
func EnumSequences(numQ, maxLen int, visit func(qs []int)) {
	qs := make([]int, 0, maxLen)
	var rec func(k int)
	rec = func(k int) {
		if k == 0 {
			visit(qs)
			return
		}
		for q := 0; q < numQ; q++ {
			qs = append(qs, q)
			rec(k - 1)
			qs = qs[:len(qs)-1]
		}
	}
	for L := 1; L <= maxLen; L++ {
		rec(L)
	}
}

// EnumMultisets calls visit on every multiplicity vector over numQ states
// with total count in 1..maxTotal. The slice is reused.
func EnumMultisets(numQ, maxTotal int, visit func(mu []int)) {
	mu := make([]int, numQ)
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == numQ-1 {
			mu[i] = remaining
			total := 0
			for _, c := range mu {
				total += c
			}
			if total >= 1 {
				visit(mu)
			}
			return
		}
		for c := 0; c <= remaining; c++ {
			mu[i] = c
			rec(i+1, remaining-c)
		}
	}
	for total := 1; total <= maxTotal; total++ {
		rec(0, total)
	}
}

// SeqFromMu builds a canonical sorted sequence realizing the multiplicity
// vector mu (state i repeated mu[i] times, ascending).
func SeqFromMu(mu []int) []int {
	var qs []int
	for q, c := range mu {
		for i := 0; i < c; i++ {
			qs = append(qs, q)
		}
	}
	return qs
}

// Permutations calls visit on every permutation of qs (the slice is
// mutated in place and restored; copy inside visit if retained).
func Permutations(qs []int, visit func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(qs) {
			visit(qs)
			return
		}
		for i := k; i < len(qs); i++ {
			qs[k], qs[i] = qs[i], qs[k]
			rec(k + 1)
			qs[k], qs[i] = qs[i], qs[k]
		}
	}
	rec(0)
}

// SortedCopy returns a sorted copy of qs; two sequences are permutations of
// each other iff their sorted copies are equal.
func SortedCopy(qs []int) []int {
	c := append([]int(nil), qs...)
	sort.Ints(c)
	return c
}
