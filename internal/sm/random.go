package sm

import "math/rand"

// This file generates random SM programs for property-based testing and
// for the conversion-blowup measurements of experiment E11.
//
// RandomCounterSequential and RandomModThresh generate programs that are
// symmetric *by construction* (counter machines and μ-based cascades);
// RandomSequential and RandomParallel generate arbitrary programs, which
// are usually not symmetric, exercising the rejection paths of the
// checkers.

// RandomModThresh returns a random mod-thresh program over numQ input
// states and numR results with the given number of clauses. Atoms use
// moduli in 2..maxMod and thresholds in 1..maxThresh. Always a valid SM
// program (Definition 3.6).
func RandomModThresh(numQ, numR, clauses, maxMod, maxThresh int, rng *rand.Rand) *ModThresh {
	m := &ModThresh{NumQ: numQ, NumR: numR, Default: rng.Intn(numR)}
	var randAtom func() Prop
	randAtom = func() Prop {
		if rng.Intn(2) == 0 {
			mod := 2 + rng.Intn(maxMod-1)
			return ModAtom{State: rng.Intn(numQ), Rem: rng.Intn(mod), Mod: mod}
		}
		return ThreshAtom{State: rng.Intn(numQ), T: 1 + rng.Intn(maxThresh)}
	}
	var randProp func(depth int) Prop
	randProp = func(depth int) Prop {
		if depth == 0 || rng.Intn(2) == 0 {
			return randAtom()
		}
		switch rng.Intn(3) {
		case 0:
			return Not{P: randProp(depth - 1)}
		case 1:
			return And{Ps: []Prop{randProp(depth - 1), randProp(depth - 1)}}
		default:
			return Or{Ps: []Prop{randProp(depth - 1), randProp(depth - 1)}}
		}
	}
	for i := 0; i < clauses; i++ {
		m.Clauses = append(m.Clauses, Clause{Cond: randProp(2), Result: rng.Intn(numR)})
	}
	return m
}

// RandomCounterSequential returns a sequential program that is symmetric by
// construction: the working state is a vector of per-input-state counters,
// each either modular (period 2..maxMod) or saturating (cap 1..maxCap), and
// β is a random function of the counter vector. Since counter updates
// commute, the program passes CheckSequential.
func RandomCounterSequential(numQ, numR, maxMod, maxCap int, rng *rand.Rand) *Sequential {
	kind := make([]bool, numQ) // true = modular counter
	size := make([]int, numQ)  // counter range per input state
	total := 1
	for j := 0; j < numQ; j++ {
		kind[j] = rng.Intn(2) == 0
		if kind[j] {
			size[j] = 2 + rng.Intn(maxMod-1)
		} else {
			size[j] = 2 + rng.Intn(maxCap) // values 0..size-1, saturating at size-1
		}
		total *= size[j]
	}
	encode := func(digits []int) int {
		code := 0
		for i := numQ - 1; i >= 0; i-- {
			code = code*size[i] + digits[i]
		}
		return code
	}
	s := &Sequential{
		NumQ: numQ,
		NumR: numR,
		W0:   0,
		P:    make([][]int, total),
		Beta: make([]int, total),
	}
	for w := 0; w < total; w++ {
		digits := make([]int, numQ)
		code := w
		for i := 0; i < numQ; i++ {
			digits[i] = code % size[i]
			code /= size[i]
		}
		row := make([]int, numQ)
		for q := 0; q < numQ; q++ {
			next := append([]int(nil), digits...)
			if kind[q] {
				next[q] = (next[q] + 1) % size[q]
			} else if next[q] < size[q]-1 {
				next[q]++
			}
			row[q] = encode(next)
		}
		s.P[w] = row
		s.Beta[w] = rng.Intn(numR)
	}
	return s
}

// RandomSequential returns an arbitrary random sequential program; with
// overwhelming probability it is not symmetric.
func RandomSequential(numQ, numR, numW int, rng *rand.Rand) *Sequential {
	s := &Sequential{
		NumQ: numQ,
		NumR: numR,
		W0:   rng.Intn(numW),
		P:    make([][]int, numW),
		Beta: make([]int, numW),
	}
	for w := 0; w < numW; w++ {
		row := make([]int, numQ)
		for q := range row {
			row[q] = rng.Intn(numW)
		}
		s.P[w] = row
		s.Beta[w] = rng.Intn(numR)
	}
	return s
}

// RandomParallel returns an arbitrary random parallel program; with
// overwhelming probability it is neither commutative nor associative.
func RandomParallel(numQ, numR, numW int, rng *rand.Rand) *Parallel {
	p := &Parallel{
		NumQ:  numQ,
		NumR:  numR,
		Alpha: make([]int, numQ),
		P:     make([][]int, numW),
		Beta:  make([]int, numW),
	}
	for q := range p.Alpha {
		p.Alpha[q] = rng.Intn(numW)
	}
	for w := 0; w < numW; w++ {
		row := make([]int, numW)
		for v := range row {
			row[v] = rng.Intn(numW)
		}
		p.P[w] = row
		p.Beta[w] = rng.Intn(numR)
	}
	return p
}

// RandomCommutativeMonoidParallel returns a parallel program built from a
// random commutative-monoid structure: working states are vectors of
// per-input modular/saturating counters combined by componentwise addition
// (the same trick as Lemma 3.8), so it is a parallel SM program by
// construction.
func RandomCommutativeMonoidParallel(numQ, numR, maxMod, maxCap int, rng *rand.Rand) *Parallel {
	kind := make([]bool, numQ)
	size := make([]int, numQ)
	total := 1
	for j := 0; j < numQ; j++ {
		kind[j] = rng.Intn(2) == 0
		if kind[j] {
			size[j] = 2 + rng.Intn(maxMod-1)
		} else {
			size[j] = 2 + rng.Intn(maxCap)
		}
		total *= size[j]
	}
	encode := func(digits []int) int {
		code := 0
		for i := numQ - 1; i >= 0; i-- {
			code = code*size[i] + digits[i]
		}
		return code
	}
	decode := func(code int) []int {
		digits := make([]int, numQ)
		for i := 0; i < numQ; i++ {
			digits[i] = code % size[i]
			code /= size[i]
		}
		return digits
	}
	p := &Parallel{
		NumQ:  numQ,
		NumR:  numR,
		Alpha: make([]int, numQ),
		P:     make([][]int, total),
		Beta:  make([]int, total),
	}
	for q := 0; q < numQ; q++ {
		digits := make([]int, numQ)
		digits[q] = 1 % size[q]
		if !kind[q] {
			digits[q] = 1
		}
		p.Alpha[q] = encode(digits)
	}
	for w1 := 0; w1 < total; w1++ {
		d1 := decode(w1)
		row := make([]int, total)
		for w2 := 0; w2 < total; w2++ {
			d2 := decode(w2)
			sum := make([]int, numQ)
			for i := 0; i < numQ; i++ {
				if kind[i] {
					sum[i] = (d1[i] + d2[i]) % size[i]
				} else {
					sum[i] = d1[i] + d2[i]
					if sum[i] > size[i]-1 {
						sum[i] = size[i] - 1
					}
				}
			}
			row[w2] = encode(sum)
		}
		p.P[w1] = row
		p.Beta[w1] = rng.Intn(numR)
	}
	return p
}
