package sm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/testutil"
)

// orSequential returns the hand-built sequential program for "1 if any
// input equals 1, else 0" over Q = {0, 1}: two working states latching 1.
func orSequential() *Sequential {
	return &Sequential{
		NumQ: 2,
		NumR: 2,
		W0:   0,
		P: [][]int{
			{0, 1}, // from state 0: input 0 stays, input 1 latches
			{1, 1}, // state 1 absorbs
		},
		Beta: []int{0, 1},
	}
}

// paritySequential returns the hand-built sequential program computing the
// parity of the number of 1-inputs.
func paritySequential() *Sequential {
	return &Sequential{
		NumQ: 2,
		NumR: 2,
		W0:   0,
		P: [][]int{
			{0, 1},
			{1, 0},
		},
		Beta: []int{0, 1},
	}
}

// lastInputSequential remembers the last input — the canonical
// NON-symmetric program.
func lastInputSequential() *Sequential {
	return &Sequential{
		NumQ: 2,
		NumR: 2,
		W0:   0,
		P: [][]int{
			{0, 1},
			{0, 1},
		},
		Beta: []int{0, 1},
	}
}

func TestSequentialEval(t *testing.T) {
	s := orSequential()
	cases := []struct {
		in   []int
		want int
	}{
		{[]int{0}, 0},
		{[]int{1}, 1},
		{[]int{0, 0, 0}, 0},
		{[]int{0, 1, 0}, 1},
		{[]int{1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := s.Eval(c.in); got != c.want {
			t.Errorf("OR(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSequentialEvalEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	orSequential().Eval(nil)
}

func TestSequentialValidate(t *testing.T) {
	s := orSequential()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := orSequential()
	bad.W0 = 5
	if bad.Validate() == nil {
		t.Fatal("bad W0 accepted")
	}
	bad2 := orSequential()
	bad2.P[0][1] = 9
	if bad2.Validate() == nil {
		t.Fatal("out-of-range transition accepted")
	}
	bad3 := orSequential()
	bad3.Beta[0] = 7
	if bad3.Validate() == nil {
		t.Fatal("out-of-range Beta accepted")
	}
}

func TestCheckSequentialAccepts(t *testing.T) {
	for name, s := range map[string]*Sequential{
		"or":     orSequential(),
		"parity": paritySequential(),
	} {
		if err := CheckSequential(s); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
}

func TestCheckSequentialRejectsLastInput(t *testing.T) {
	if err := CheckSequential(lastInputSequential()); err == nil {
		t.Fatal("last-input program accepted as symmetric")
	}
}

// The observational check must agree with brute force on random programs.
func TestCheckSequentialMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSequential(2, 2, 2+rng.Intn(4), rng)
		fast := CheckSequential(s) == nil
		slow := BruteCheckSequential(s, 6) == nil
		if fast && !slow {
			return false // fast check accepted a brute-force-rejected program
		}
		// fast == false with slow == true means the asymmetry appears only
		// on longer inputs; bounded brute force cannot refute that (the
		// exhaustive cross-validation lives in TestSequentialCensusBinaryAlphabet),
		// so only the acceptance direction is checked here.
		return true
	}
	if err := quick.Check(prop, testutil.QuickN(t, 132, 60)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSequentialAcceptsCounterMachines(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomCounterSequential(1+rng.Intn(3), 2+rng.Intn(3), 4, 3, rng)
		return CheckSequential(s) == nil && BruteCheckSequential(s, 5) == nil
	}
	if err := quick.Check(prop, testutil.QuickN(t, 133, 40)); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEvalAllTreesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := RandomCommutativeMonoidParallel(3, 4, 4, 3, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	qs := []int{0, 1, 2, 2, 1, 0, 1}
	want := p.Eval(qs)
	if got := p.EvalBalanced(qs); got != want {
		t.Fatalf("balanced = %d, left = %d", got, want)
	}
	for i := 0; i < 50; i++ {
		if got := p.EvalRandomTree(qs, rng); got != want {
			t.Fatalf("random tree = %d, left = %d", got, want)
		}
	}
}

func TestParallelEvalEmptyPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomCommutativeMonoidParallel(2, 2, 3, 2, rng)
	for i, f := range []func(){
		func() { p.Eval(nil) },
		func() { p.EvalBalanced(nil) },
		func() { p.EvalRandomTree(nil, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCheckParallelAcceptsMonoids(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomCommutativeMonoidParallel(1+rng.Intn(3), 2+rng.Intn(3), 4, 3, rng)
		return CheckParallel(p) == nil
	}
	if err := quick.Check(prop, testutil.QuickN(t, 134, 40)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckParallelMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomParallel(2, 2, 2+rng.Intn(3), rng)
		fast := CheckParallel(p) == nil
		slow := BruteCheckParallel(p, 5, 10, seed) == nil
		if fast && !slow {
			return false // acceptance must be sound
		}
		// A fast rejection with bounded-brute acceptance is expected when
		// the asymmetry needs longer inputs (observed at length 10 in the
		// wild); bounded brute force cannot refute it, so the reject
		// direction is one-sided here.
		return true
	}
	if err := quick.Check(prop, testutil.QuickN(t, 135, 50)); err != nil {
		t.Fatal(err)
	}
}

func TestModThreshEval(t *testing.T) {
	any1 := AnyPresent(3, 1)
	if got := any1.Eval([]int{0, 2, 0}); got != 0 {
		t.Fatalf("AnyPresent = %d, want 0", got)
	}
	if got := any1.Eval([]int{0, 1, 2}); got != 1 {
		t.Fatalf("AnyPresent = %d, want 1", got)
	}
	par := Parity(2, 1)
	if got := par.Eval([]int{1, 0, 1, 1}); got != 1 {
		t.Fatalf("Parity = %d, want 1", got)
	}
	if got := par.Eval([]int{1, 1}); got != 0 {
		t.Fatalf("Parity = %d, want 0", got)
	}
}

func TestModThreshLibrary(t *testing.T) {
	atl := AtLeast(2, 1, 3)
	if atl.Eval([]int{1, 1}) != 0 || atl.Eval([]int{1, 1, 1, 0}) != 1 {
		t.Fatal("AtLeast wrong")
	}
	ex := Exactly(2, 1, 2)
	if ex.Eval([]int{1, 1, 0}) != 1 || ex.Eval([]int{1, 1, 1}) != 0 || ex.Eval([]int{0}) != 0 {
		t.Fatal("Exactly wrong")
	}
	ex0 := Exactly(2, 1, 0)
	if ex0.Eval([]int{0, 0}) != 1 || ex0.Eval([]int{1, 0}) != 0 {
		t.Fatal("Exactly(0) wrong")
	}
	cm := CountMod(2, 1, 3)
	if cm.Eval([]int{1, 1, 1, 1, 0}) != 1 {
		t.Fatal("CountMod wrong")
	}
	cc := CappedCount(2, 1, 2)
	if cc.Eval([]int{0}) != 0 || cc.Eval([]int{1}) != 1 || cc.Eval([]int{1, 1, 1}) != 2 {
		t.Fatal("CappedCount wrong")
	}
}

func TestModThreshValidate(t *testing.T) {
	m := AnyPresent(2, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &ModThresh{NumQ: 2, NumR: 2, Clauses: []Clause{
		{Cond: ThreshAtom{State: 5, T: 1}, Result: 0},
	}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range atom state accepted")
	}
	bad2 := &ModThresh{NumQ: 2, NumR: 2, Clauses: []Clause{
		{Cond: ModAtom{State: 0, Rem: 0, Mod: 0}, Result: 0},
	}}
	if bad2.Validate() == nil {
		t.Fatal("zero modulus accepted")
	}
	bad3 := &ModThresh{NumQ: 2, NumR: 2, Default: 5}
	if bad3.Validate() == nil {
		t.Fatal("bad default accepted")
	}
}

func TestBitwiseOR(t *testing.T) {
	or2 := BitwiseOR(2)
	if err := or2.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   []int
		want int
	}{
		{[]int{0}, 0},
		{[]int{1, 2}, 3},
		{[]int{2, 2}, 2},
		{[]int{3, 0}, 3},
		{[]int{1, 0, 1}, 1},
	}
	for _, c := range cases {
		if got := or2.Eval(c.in); got != c.want {
			t.Errorf("OR(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBitwiseORBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitwiseOR(0)
}

func TestPropString(t *testing.T) {
	p := And{Ps: []Prop{
		Not{P: ThreshAtom{State: 0, T: 1}},
		ModAtom{State: 1, Rem: 2, Mod: 3},
	}}
	want := "(¬(μ0 < 1)) ∧ (μ1 ≡ 2 (mod 3))"
	if got := p.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	o := Or{Ps: []Prop{ThreshAtom{State: 0, T: 2}}}
	if o.String() != "(μ0 < 2)" {
		t.Fatalf("Or string = %q", o.String())
	}
	if p.Atoms() != 2 || o.Atoms() != 1 {
		t.Fatal("Atoms count wrong")
	}
}

func TestMultiplicities(t *testing.T) {
	mu := Multiplicities([]int{0, 1, 1, 2, 1}, 4)
	want := []int{1, 3, 1, 0}
	for i := range want {
		if mu[i] != want[i] {
			t.Fatalf("mu = %v, want %v", mu, want)
		}
	}
}

func TestEnumSequencesCount(t *testing.T) {
	count := 0
	EnumSequences(2, 3, func(qs []int) { count++ })
	if count != 2+4+8 {
		t.Fatalf("count = %d, want 14", count)
	}
}

func TestEnumMultisetsCount(t *testing.T) {
	count := 0
	EnumMultisets(2, 3, func(mu []int) { count++ })
	// Multisets over 2 states with total 1, 2, 3: 2 + 3 + 4 = 9.
	if count != 9 {
		t.Fatalf("count = %d, want 9", count)
	}
}

func TestSeqFromMu(t *testing.T) {
	qs := SeqFromMu([]int{2, 0, 1})
	want := []int{0, 0, 2}
	if len(qs) != len(want) {
		t.Fatalf("qs = %v", qs)
	}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("qs = %v, want %v", qs, want)
		}
	}
}

func TestPermutationsCount(t *testing.T) {
	count := 0
	seen := map[string]bool{}
	Permutations([]int{1, 2, 3}, func(p []int) {
		count++
		seen[string(rune(p[0]))+string(rune(p[1]))+string(rune(p[2]))] = true
	})
	if count != 6 || len(seen) != 6 {
		t.Fatalf("count = %d distinct = %d, want 6", count, len(seen))
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("sorted = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
