package sm

// This file enumerates entire program spaces for tiny alphabets, used to
// explore the density of SM functions among all finite-state programs
// (experiment E11's census of the model) and to cross-validate the
// checkers exhaustively rather than on random samples.

// Census summarizes an exhaustive scan of a program space.
type Census struct {
	Total     int // programs enumerated
	Symmetric int // programs accepted by the (complete) checker
	// DistinctFunctions counts the distinct SM functions realized, keyed
	// by their value table on all inputs up to the probe length.
	DistinctFunctions int
}

// EnumerateSequential calls visit for every sequential program with the
// given alphabet sizes (all |W|^(|W|·|Q|) transition tables × |R|^|W| output
// maps × |W| start states). The program passed to visit is reused; copy it
// if retained. Sizes must be tiny: the space grows doubly exponentially.
func EnumerateSequential(numQ, numW, numR int, visit func(*Sequential)) {
	if numW > 3 || numQ > 2 || numR > 3 {
		panic("sm: EnumerateSequential only supports tiny spaces (numW <= 3, numQ <= 2, numR <= 3)")
	}
	s := &Sequential{
		NumQ: numQ,
		NumR: numR,
		P:    make([][]int, numW),
		Beta: make([]int, numW),
	}
	for w := range s.P {
		s.P[w] = make([]int, numQ)
	}
	cells := numW * numQ

	var fillP func(i int)
	var fillBeta func(i int)
	fillBeta = func(i int) {
		if i == numW {
			for w0 := 0; w0 < numW; w0++ {
				s.W0 = w0
				visit(s)
			}
			return
		}
		for r := 0; r < numR; r++ {
			s.Beta[i] = r
			fillBeta(i + 1)
		}
	}
	fillP = func(i int) {
		if i == cells {
			fillBeta(0)
			return
		}
		w, q := i/numQ, i%numQ
		for nxt := 0; nxt < numW; nxt++ {
			s.P[w][q] = nxt
			fillP(i + 1)
		}
	}
	fillP(0)
}

// SequentialCensus exhaustively scans the sequential program space and
// reports how many programs are SM and how many distinct SM functions
// they realize (distinguished on all inputs up to probeLen).
func SequentialCensus(numQ, numW, numR, probeLen int) Census {
	var c Census
	seen := make(map[string]bool)
	EnumerateSequential(numQ, numW, numR, func(s *Sequential) {
		c.Total++
		if CheckSequential(s) != nil {
			return
		}
		c.Symmetric++
		key := functionKey(s, numQ, probeLen)
		if !seen[key] {
			seen[key] = true
		}
	})
	c.DistinctFunctions = len(seen)
	return c
}

// functionKey serializes a function's value table on all multisets up to
// maxLen, so two programs computing the same SM function share a key.
func functionKey(f Func, numQ, maxLen int) string {
	var key []byte
	EnumMultisets(numQ, maxLen, func(mu []int) {
		key = append(key, byte('0'+f.Eval(SeqFromMu(mu))))
	})
	return string(key)
}

// EnumerateCanonicalSequential calls visit for every *canonical*
// sequential program with alphabet numQ, result alphabet numR, and
// exactly 1..maxW working states, all reachable from the start state 0.
// Canonical means working states are numbered in row-major first-reference
// order: scanning P[0][0], P[0][1], ..., P[1][0], ... the first reference
// to each state s >= 1 occurs after the first reference to s-1 and before
// row s begins. Every sequential program is isomorphic — after dropping
// unreachable states and renaming, neither of which changes the computed
// function or any conversion built on reachable structure — to exactly
// one canonical program, so visiting canonical programs covers the whole
// program space up to isomorphism (the bounded model checker's pruning;
// see internal/mc). The program passed to visit is reused; copy it if
// retained.
func EnumerateCanonicalSequential(numQ, maxW, numR int, visit func(*Sequential)) {
	if numQ < 1 || maxW < 1 || numR < 1 {
		panic("sm: EnumerateCanonicalSequential needs numQ, maxW, numR >= 1")
	}
	for n := 1; n <= maxW; n++ {
		enumCanonicalTables(numQ, n, numR, visit)
	}
}

// enumCanonicalTables enumerates canonical transition tables with exactly
// n states (every state referenced in first-reference order), crossed
// with all numR^n output maps.
func enumCanonicalTables(numQ, n, numR int, visit func(*Sequential)) {
	s := &Sequential{
		NumQ: numQ,
		NumR: numR,
		W0:   0,
		P:    make([][]int, n),
		Beta: make([]int, n),
	}
	for w := range s.P {
		s.P[w] = make([]int, numQ)
	}
	cells := n * numQ

	var fillBeta func(i int)
	fillBeta = func(i int) {
		if i == n {
			visit(s)
			return
		}
		for r := 0; r < numR; r++ {
			s.Beta[i] = r
			fillBeta(i + 1)
		}
	}
	// maxSeen is the highest state index referenced so far (state 0 exists
	// a priori as the start state).
	var fillP func(i, maxSeen int)
	fillP = func(i, maxSeen int) {
		if i == cells {
			if maxSeen == n-1 {
				fillBeta(0)
			}
			return
		}
		w, q := i/numQ, i%numQ
		if q == 0 && w > maxSeen {
			// Row w starts before state w was ever referenced: state w
			// would be unreachable, so no canonical completion exists.
			return
		}
		hi := maxSeen + 1
		if hi > n-1 {
			hi = n - 1
		}
		for nxt := 0; nxt <= hi; nxt++ {
			s.P[w][q] = nxt
			seen := maxSeen
			if nxt > seen {
				seen = nxt
			}
			fillP(i+1, seen)
		}
	}
	fillP(0, 0)
}

// CanonicalizeSequential returns the canonical form of s: unreachable
// states dropped and the rest renamed into row-major first-reference
// order from the start state. The result computes the same function as s
// and is the unique representative EnumerateCanonicalSequential visits
// for s's isomorphism class.
func CanonicalizeSequential(s *Sequential) *Sequential {
	order := []int{s.W0}
	rank := map[int]int{s.W0: 0}
	for i := 0; i < len(order); i++ {
		w := order[i]
		for q := 0; q < s.NumQ; q++ {
			nxt := s.P[w][q]
			if _, ok := rank[nxt]; !ok {
				rank[nxt] = len(order)
				order = append(order, nxt)
			}
		}
	}
	c := &Sequential{
		NumQ: s.NumQ,
		NumR: s.NumR,
		W0:   0,
		P:    make([][]int, len(order)),
		Beta: make([]int, len(order)),
	}
	for i, w := range order {
		row := make([]int, s.NumQ)
		for q := 0; q < s.NumQ; q++ {
			row[q] = rank[s.P[w][q]]
		}
		c.P[i] = row
		c.Beta[i] = s.Beta[w]
	}
	return c
}

// EnumerateSmallModThresh calls visit for every mod-thresh program over
// numQ input states and numR results whose clauses (at most maxClauses of
// them, each "atom or negated atom => result", plus a default) draw atoms
// from the bounded set {μ_s < t : 1 <= t <= maxThresh} ∪
// {μ_s ≡ r (mod m) : 2 <= m <= maxMod, 0 <= r < m}. This is the
// mod-thresh-side program space of the bounded model checker: small, but
// it exercises every atom kind, clause ordering, negation, and the lcm /
// saturation bookkeeping of Lemma 3.8. The program passed to visit is
// reused; copy it if retained.
func EnumerateSmallModThresh(numQ, numR, maxClauses, maxMod, maxThresh int, visit func(*ModThresh)) {
	if numQ < 1 || numR < 1 || maxClauses < 0 || maxMod < 2 || maxThresh < 1 {
		panic("sm: EnumerateSmallModThresh needs numQ, numR >= 1, maxClauses >= 0, maxMod >= 2, maxThresh >= 1")
	}
	var props []Prop
	for st := 0; st < numQ; st++ {
		for t := 1; t <= maxThresh; t++ {
			props = append(props, ThreshAtom{State: st, T: t})
			props = append(props, Not{P: ThreshAtom{State: st, T: t}})
		}
		for m := 2; m <= maxMod; m++ {
			for r := 0; r < m; r++ {
				props = append(props, ModAtom{State: st, Rem: r, Mod: m})
				props = append(props, Not{P: ModAtom{State: st, Rem: r, Mod: m}})
			}
		}
	}
	mt := &ModThresh{NumQ: numQ, NumR: numR}
	var fill func(clause int)
	fill = func(clause int) {
		for def := 0; def < numR; def++ {
			mt.Default = def
			visit(mt)
		}
		if clause == maxClauses {
			return
		}
		mt.Clauses = append(mt.Clauses, Clause{})
		for _, p := range props {
			for res := 0; res < numR; res++ {
				mt.Clauses[clause] = Clause{Cond: p, Result: res}
				fill(clause + 1)
			}
		}
		mt.Clauses = mt.Clauses[:clause]
	}
	fill(0)
}
