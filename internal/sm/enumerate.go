package sm

// This file enumerates entire program spaces for tiny alphabets, used to
// explore the density of SM functions among all finite-state programs
// (experiment E11's census of the model) and to cross-validate the
// checkers exhaustively rather than on random samples.

// Census summarizes an exhaustive scan of a program space.
type Census struct {
	Total     int // programs enumerated
	Symmetric int // programs accepted by the (complete) checker
	// DistinctFunctions counts the distinct SM functions realized, keyed
	// by their value table on all inputs up to the probe length.
	DistinctFunctions int
}

// EnumerateSequential calls visit for every sequential program with the
// given alphabet sizes (all |W|^(|W|·|Q|) transition tables × |R|^|W| output
// maps × |W| start states). The program passed to visit is reused; copy it
// if retained. Sizes must be tiny: the space grows doubly exponentially.
func EnumerateSequential(numQ, numW, numR int, visit func(*Sequential)) {
	if numW > 3 || numQ > 2 || numR > 3 {
		panic("sm: EnumerateSequential only supports tiny spaces (numW <= 3, numQ <= 2, numR <= 3)")
	}
	s := &Sequential{
		NumQ: numQ,
		NumR: numR,
		P:    make([][]int, numW),
		Beta: make([]int, numW),
	}
	for w := range s.P {
		s.P[w] = make([]int, numQ)
	}
	cells := numW * numQ

	var fillP func(i int)
	var fillBeta func(i int)
	fillBeta = func(i int) {
		if i == numW {
			for w0 := 0; w0 < numW; w0++ {
				s.W0 = w0
				visit(s)
			}
			return
		}
		for r := 0; r < numR; r++ {
			s.Beta[i] = r
			fillBeta(i + 1)
		}
	}
	fillP = func(i int) {
		if i == cells {
			fillBeta(0)
			return
		}
		w, q := i/numQ, i%numQ
		for nxt := 0; nxt < numW; nxt++ {
			s.P[w][q] = nxt
			fillP(i + 1)
		}
	}
	fillP(0)
}

// SequentialCensus exhaustively scans the sequential program space and
// reports how many programs are SM and how many distinct SM functions
// they realize (distinguished on all inputs up to probeLen).
func SequentialCensus(numQ, numW, numR, probeLen int) Census {
	var c Census
	seen := make(map[string]bool)
	EnumerateSequential(numQ, numW, numR, func(s *Sequential) {
		c.Total++
		if CheckSequential(s) != nil {
			return
		}
		c.Symmetric++
		key := functionKey(s, numQ, probeLen)
		if !seen[key] {
			seen[key] = true
		}
	})
	c.DistinctFunctions = len(seen)
	return c
}

// functionKey serializes a function's value table on all multisets up to
// maxLen, so two programs computing the same SM function share a key.
func functionKey(f Func, numQ, maxLen int) string {
	var key []byte
	EnumMultisets(numQ, maxLen, func(mu []int) {
		key = append(key, byte('0'+f.Eval(SeqFromMu(mu))))
	})
	return string(key)
}
