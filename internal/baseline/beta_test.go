package baseline

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestNewBetaDeadRoot(t *testing.T) {
	g := graph.Path(3)
	g.RemoveNode(0)
	if _, err := NewBeta(g, 0); err == nil {
		t.Fatal("dead root accepted")
	}
}

func TestPulseSucceedsOnIntactTree(t *testing.T) {
	g := graph.Grid(3, 3)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.RunPulses(10); got != 10 {
		t.Fatalf("pulses = %d", got)
	}
	if b.Rounds != 10*2*4 { // depth of 3x3 grid from corner = 4
		t.Fatalf("rounds = %d", b.Rounds)
	}
}

func TestCriticalNodesPathIsThetaN(t *testing.T) {
	g := graph.Path(20)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// On a path rooted at one end, every node except the far leaf is
	// internal: 19 critical nodes.
	if got := len(b.CriticalNodes()); got != 19 {
		t.Fatalf("critical nodes = %d, want 19", got)
	}
}

func TestCriticalNodesStarIsConstant(t *testing.T) {
	g := graph.Star(20)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.CriticalNodes()); got != 1 {
		t.Fatalf("critical nodes = %d, want 1 (the hub)", got)
	}
}

func TestInternalNodeFailureBreaksPulse(t *testing.T) {
	g := graph.Path(10)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Pulse()
	g.RemoveNode(5) // internal node dies
	if err := b.Pulse(); err == nil {
		t.Fatal("pulse succeeded with a broken tree")
	}
	if b.Pulses != 1 {
		t.Fatalf("pulses = %d", b.Pulses)
	}
}

func TestTreeEdgeFailureBreaksPulse(t *testing.T) {
	g := graph.Cycle(8)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a tree edge: the non-tree cycle edge cannot save the β
	// synchronizer, unlike a 0-sensitive algorithm.
	broken := false
	for v, p := range b.Parent {
		if v != b.Root && p != graph.Unreachable {
			g.RemoveEdge(v, p)
			broken = true
			break
		}
	}
	if !broken {
		t.Fatal("no tree edge found")
	}
	if g.Connected() == false {
		t.Fatal("test setup: cycle should stay connected after one removal")
	}
	if err := b.Pulse(); err == nil {
		t.Fatal("pulse succeeded despite tree edge loss on a still-connected graph")
	}
}

func TestLeafFailureDoesNotBreakPulse(t *testing.T) {
	g := graph.Star(6)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(3) // a leaf dies: remaining tree intact
	if err := b.Pulse(); err != nil {
		t.Fatalf("leaf death broke the pulse: %v", err)
	}
}

func TestNonTreeEdgeFailureHarmless(t *testing.T) {
	g := graph.Complete(6)
	b, err := NewBeta(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove an edge not in the tree.
	tree := map[graph.Edge]bool{}
	for v, p := range b.Parent {
		if v != b.Root && p != graph.Unreachable {
			tree[graph.NormEdge(v, p)] = true
		}
	}
	for _, e := range g.Edges() {
		if !tree[e] {
			g.RemoveEdge(e.U, e.V)
			break
		}
	}
	if err := b.Pulse(); err != nil {
		t.Fatalf("non-tree edge removal broke the pulse: %v", err)
	}
}

// CriticalNodes accumulates from a map; its output must be sorted and
// identical across rebuilds (fresh maps iterate in different orders).
// Pins the sort.Ints fix demanded by the fssga-vet maporder pass.
func TestCriticalNodesCanonical(t *testing.T) {
	want := []int{0, 1, 2, 3, 4} // path 0-..-5 rooted at 0: every parent
	for i := 0; i < 5; i++ {
		b, err := NewBeta(graph.Path(6), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.CriticalNodes(); !reflect.DeepEqual(got, want) {
			t.Fatalf("CriticalNodes() = %v, want %v", got, want)
		}
	}
}
