// Package baseline provides the non-FSSGA comparison systems of the
// paper's fault-tolerance discussion: the spanning-tree-based β
// synchronizer of Awerbuch, whose sensitivity is Θ(n) (the failure of any
// internal tree node breaks it — the introduction's canonical fragile
// algorithm), used by experiments E5 and E13 as the high-sensitivity
// baseline. The low-level random-walk oracle lives in internal/agent.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// BetaSynchronizer simulates the tree-based β synchronizer: a BFS
// spanning tree is fixed at start-up; each synchronization pulse is a
// converge-cast to the root followed by a broadcast back. A pulse
// succeeds only if the entire tree is still intact — which is exactly why
// the algorithm's critical-node set is all internal tree nodes.
type BetaSynchronizer struct {
	G    *graph.Graph
	Root int
	// Parent[v] is v's tree parent (Root for the root itself;
	// graph.Unreachable for nodes outside the root's component).
	Parent []int
	// Pulses counts successful synchronization cycles.
	Pulses int
	// Rounds counts simulated message rounds (2×depth per pulse).
	Rounds int
	depth  int
}

// NewBeta builds the synchronizer over g's current topology.
func NewBeta(g *graph.Graph, root int) (*BetaSynchronizer, error) {
	if !g.Alive(root) {
		return nil, fmt.Errorf("baseline: root %d is not live", root)
	}
	b := &BetaSynchronizer{G: g, Root: root, Parent: g.SpanningTree(root)}
	dist := g.BFSDistances(root)
	for _, d := range dist {
		if d > b.depth {
			b.depth = d
		}
	}
	return b, nil
}

// CriticalNodes returns χ(σ): the internal nodes of the spanning tree
// (every node that is some other node's parent), plus the root. Their
// count is Θ(n) on path-like trees.
func (b *BetaSynchronizer) CriticalNodes() []int {
	internal := map[int]bool{b.Root: true}
	for v, p := range b.Parent {
		if p != graph.Unreachable && v != b.Root {
			internal[p] = true
		}
	}
	var out []int
	for v := range internal {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// TreeIntact reports whether every tree edge and node is still alive.
func (b *BetaSynchronizer) TreeIntact() bool {
	if !b.G.Alive(b.Root) {
		return false
	}
	for v, p := range b.Parent {
		if p == graph.Unreachable || v == b.Root {
			continue
		}
		if !b.G.Alive(v) {
			continue // a dead leaf no longer needs synchronizing…
		}
		if !b.G.HasEdge(v, p) {
			return false // …but a live node with a dead parent edge is cut off
		}
	}
	return true
}

// Pulse attempts one synchronization cycle. On success it advances the
// pulse counter and charges 2×depth rounds; on a broken tree it returns an
// error — the β synchronizer has no repair mechanism (that fragility is
// the point of the baseline).
func (b *BetaSynchronizer) Pulse() error {
	if !b.TreeIntact() {
		return fmt.Errorf("baseline: spanning tree broken after %d pulses", b.Pulses)
	}
	b.Pulses++
	b.Rounds += 2 * b.depth
	return nil
}

// RunPulses attempts k pulses, returning how many succeeded.
func (b *BetaSynchronizer) RunPulses(k int) int {
	for i := 0; i < k; i++ {
		if b.Pulse() != nil {
			return i
		}
	}
	return k
}
