package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/algo/bridges"
	"repro/internal/graph"
	"repro/internal/stats"
)

// E2Bridges reproduces Claim 2.1 and the Section 2.1 bridge-finding
// guarantees: a non-bridge counter exceeds ±1 within expected O(mn) steps
// (measured both on the direct process and on the proof's 3n+1-node
// product graph), bridge counters never leave {-1, 0, 1}, and after
// O(c·mn·log n) steps the surviving candidate set equals the true bridge
// set.
func E2Bridges(opts Options) *Table {
	t := &Table{
		ID:    "E2",
		Title: "Random-walk bridge finding (Claim 2.1)",
		Claim: "non-bridge exceed time = O(mn); bridges never exceed; full ID in O(c·mn·log n) steps",
		Columns: []string{"graph", "n", "m", "mn", "mean exceed steps",
			"steps/mn", "product-graph mean", "ID success"},
	}
	sizes := []int{8, 16, 32}
	trials := 30
	if opts.Quick {
		sizes = []int{8, 16}
		trials = 10
	}

	for _, n := range sizes {
		// Workload: cycle with chords — bridgeless, sparse, tunable.
		rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
		g := graph.CycleWithChords(n, n/4, rng)
		m := g.NumEdges()
		mn := float64(m * n)

		// Direct process: steps until the counter of a fixed non-bridge
		// exceeds.
		var direct []float64
		for i := 0; i < trials; i++ {
			r := rand.New(rand.NewSource(opts.Seed + int64(i)*101))
			s, ok := bridges.StepsToExceed(g, 0, 0, 1, int(4000*mn), r)
			if ok {
				direct = append(direct, float64(s))
			}
		}

		// Product-graph process: hitting time to EXCEEDED (same law).
		pg, exceeded, err := bridges.ProductGraph(g, 0, 1)
		var product []float64
		if err == nil {
			start := (0+1)*g.Cap() + 0 // v1^0
			for i := 0; i < trials; i++ {
				r := rand.New(rand.NewSource(opts.Seed + int64(i)*211))
				s, ok := hittingTime(pg, start, exceeded, int(4000*mn), r)
				if ok {
					product = append(product, float64(s))
				}
			}
		}

		// Identification success at c = 4.
		success := 0
		for i := 0; i < trials; i++ {
			r := rand.New(rand.NewSource(opts.Seed + int64(i)*331))
			if bridges.Run(g, 0, 4, r).TrueSet {
				success++
			}
		}

		meanD := stats.Mean(direct)
		meanP := stats.Mean(product)
		t.AddRow("cycle+chords", n, m, mn, meanD, meanD/mn, meanP,
			fracStr(success, trials))
	}

	// Bridge workloads: counters stay bounded, candidates = true bridges.
	for _, n := range sizes {
		g := graph.Barbell(n/2, 2)
		m := g.NumEdges()
		success := 0
		for i := 0; i < trials; i++ {
			r := rand.New(rand.NewSource(opts.Seed + int64(i)*443))
			if bridges.Run(g, 0, 4, r).TrueSet {
				success++
			}
		}
		t.AddRow("barbell", g.NumNodes(), m, float64(m*g.NumNodes()), "-", "-", "-",
			fracStr(success, trials))
	}

	// Scaling fit: mean exceed time vs mn on a size sweep.
	var xs, ys []float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(opts.Seed + int64(n)*7))
		g := graph.CycleWithChords(n, n/4, rng)
		mn := float64(g.NumEdges() * n)
		var steps []float64
		for i := 0; i < trials; i++ {
			r := rand.New(rand.NewSource(opts.Seed + int64(i)*577))
			s, ok := bridges.StepsToExceed(g, 0, 0, 1, int(4000*mn), r)
			if ok {
				steps = append(steps, float64(s))
			}
		}
		xs = append(xs, mn)
		ys = append(ys, stats.Mean(steps))
	}
	fit := stats.LogLogFit(xs, ys)
	t.Note("log-log fit of exceed steps vs mn: slope %.2f (O(mn) predicts <= 1), R2 %.2f",
		fit.Slope, fit.R2)
	return t
}

func hittingTime(g *graph.Graph, from, to, maxSteps int, rng *rand.Rand) (int, bool) {
	pos := from
	for s := 0; s < maxSteps; s++ {
		if pos == to {
			return s, true
		}
		ns := g.SortedNeighbors(pos, nil)
		if len(ns) == 0 {
			return s, false
		}
		pos = ns[rng.Intn(len(ns))]
	}
	return maxSteps, pos == to
}

func fracStr(num, den int) string {
	return fmt.Sprintf("%d/%d", num, den)
}
