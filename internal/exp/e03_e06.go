package exp

import (
	"math/rand"

	"repro/internal/algo/bfs"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/synchronizer"
	"repro/internal/algo/twocolor"
	"repro/internal/graph"
	"repro/internal/stats"
)

// E3ShortestPath reproduces Section 2.2: labels stabilize to true
// distances within max-distance rounds, and the algorithm is 0-sensitive —
// after arbitrary benign faults it restabilizes to the new distances.
func E3ShortestPath(opts Options) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Distance-to-T clustering (Section 2.2)",
		Claim:   "label(v) stabilizes at dist(v, T) within dist rounds; 0-sensitive",
		Columns: []string{"graph", "n", "sinks", "rounds", "max dist", "exact labels", "faulted restab", "exact after faults"},
	}
	type wl struct {
		name  string
		build func() *graph.Graph
		sinks []int
	}
	wls := []wl{
		{"path", func() *graph.Graph { return graph.Path(100) }, []int{0}},
		{"grid", func() *graph.Graph { return graph.Grid(12, 12) }, []int{0}},
		{"grid-2sink", func() *graph.Graph { return graph.Grid(12, 12) }, []int{0, 143}},
		{"gnp", func() *graph.Graph {
			rng := rand.New(rand.NewSource(opts.Seed))
			return graph.RandomConnectedGNP(150, 0.03, rng)
		}, []int{0}},
	}
	if opts.Quick {
		wls = wls[:2]
	}
	for _, w := range wls {
		g := w.build()
		n := g.NumNodes()
		res, err := shortestpath.Run(g, w.sinks, 20*n, opts.Seed)
		if err != nil {
			continue
		}
		want := g.BFSDistances(w.sinks...)
		exact := labelsMatch(g, res.Labels, want, n)
		maxD := 0
		for _, d := range want {
			if d > maxD {
				maxD = d
			}
		}

		// Fault phase: remove a batch of edges/nodes (not sinks), rerun to
		// quiescence, compare against new distances.
		rng := rand.New(rand.NewSource(opts.Seed + 5))
		net, err := shortestpath.NewNetwork(g, w.sinks, n, opts.Seed)
		if err != nil {
			continue
		}
		net.RunSyncUntilQuiescent(20 * n)
		killNonBridges(g, 3, rng, net.SyncRound)
		restab, ok := net.RunSyncUntilQuiescent(20 * n)
		want2 := g.BFSDistances(w.sinks...)
		exact2 := ok
		for v := 0; v < g.Cap(); v++ {
			if !g.Alive(v) {
				continue
			}
			w2 := want2[v]
			if w2 == graph.Unreachable {
				w2 = n
			}
			if net.State(v).Label != w2 {
				exact2 = false
			}
		}
		t.AddRow(w.name, n, len(w.sinks), res.Rounds, maxD, exact, restab, exact2)
	}
	t.Note("rounds column must be <= max dist + 1 (one extra round to observe quiescence)")
	return t
}

func labelsMatch(g *graph.Graph, got, want []int, cap int) bool {
	for v := 0; v < g.Cap(); v++ {
		if !g.Alive(v) {
			continue
		}
		w := want[v]
		if w == graph.Unreachable {
			w = cap
		}
		if got[v] != w {
			return false
		}
	}
	return true
}

// E4TwoColor reproduces Section 4.1: the 2-colouring automaton succeeds
// exactly on bipartite graphs.
func E4TwoColor(opts Options) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "2-colouring / bipartiteness (Section 4.1)",
		Claim:   "FAILED floods iff the graph is not bipartite",
		Columns: []string{"family", "n", "bipartite", "verdict ok", "rounds"},
	}
	type wl struct {
		family string
		build  func(n int, rng *rand.Rand) *graph.Graph
	}
	wls := []wl{
		{"even-cycle", func(n int, _ *rand.Rand) *graph.Graph { return graph.Cycle(2 * (n / 2)) }},
		{"odd-cycle", func(n int, _ *rand.Rand) *graph.Graph { return graph.Cycle(2*(n/2) + 1) }},
		{"grid", func(n int, _ *rand.Rand) *graph.Graph { return graph.Grid(intSqrt(n), intSqrt(n)) }},
		{"hypercube", func(n int, _ *rand.Rand) *graph.Graph { return graph.Hypercube(log2int(n)) }},
		{"random-bipartite", func(n int, rng *rand.Rand) *graph.Graph {
			return graph.RandomBipartite(n/2, n/2, 0.2, rng)
		}},
		{"gnp", func(n int, rng *rand.Rand) *graph.Graph {
			return graph.RandomConnectedGNP(n, 3.0/float64(n), rng)
		}},
	}
	sizes := []int{16, 64, 144}
	trials := 10
	if opts.Quick {
		sizes = []int{16, 64}
		trials = 4
	}
	for _, w := range wls {
		for _, n := range sizes {
			ok := 0
			var rounds []float64
			bip := false
			for i := 0; i < trials; i++ {
				rng := rand.New(rand.NewSource(opts.Seed + int64(i)*17))
				g := w.build(n, rng)
				bip = g.IsBipartite()
				res := twocolor.Run(g, 0, 40*g.NumNodes(), opts.Seed+int64(i))
				if res.Converged && res.Bipartite == bip {
					ok++
				}
				rounds = append(rounds, float64(res.Rounds))
			}
			t.AddRow(w.family, n, bip, fracStr(ok, trials), stats.Mean(rounds))
		}
	}
	return t
}

func log2int(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// E5Synchronizer reproduces Section 4.2: under any fair asynchronous
// schedule, adjacent tick counts differ by at most one and k time units
// yield at least k ticks everywhere; and the wrapped execution equals the
// synchronous one.
func E5Synchronizer(opts Options) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "α synchronizer (Section 4.2)",
		Claim:   "adjacent ticks within ±1; k fair units ⇒ ≥k ticks; simulates synchronous run exactly",
		Columns: []string{"graph", "n", "units", "min ticks", "skew ok", "sim exact"},
	}
	type wl struct {
		name  string
		build func() *graph.Graph
	}
	wls := []wl{
		{"path", func() *graph.Graph { return graph.Path(40) }},
		{"grid", func() *graph.Graph { return graph.Grid(8, 8) }},
		{"gnp", func() *graph.Graph {
			rng := rand.New(rand.NewSource(opts.Seed))
			return graph.RandomConnectedGNP(60, 0.08, rng)
		}},
	}
	units := 40
	if opts.Quick {
		units = 15
		wls = wls[:2]
	}
	for _, w := range wls {
		g := w.build()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(opts.Seed + 3))

		// Reference synchronous run of the max-spread automaton.
		ref := newMaxNet(g.Clone(), opts.Seed)
		refHist := make([][]int, g.Cap())
		for r := 0; r < units; r++ {
			ref.SyncRound()
			for v := 0; v < g.Cap(); v++ {
				refHist[v] = append(refHist[v], ref.State(v))
			}
		}

		net := newWrappedMaxNet(g, opts.Seed)
		tr := synchronizer.NewTracker(net)
		skewOK := true
		ticksOK := true
		for k := 1; k <= units; k++ {
			tr.RunUnits(1, rng)
			if !tr.SkewOK() {
				skewOK = false
			}
			if tr.MinTicks() < k {
				ticksOK = false
			}
		}
		simExact := true
		for v := 0; v < g.Cap(); v++ {
			for k := 0; k < len(tr.History[v]) && k < units; k++ {
				if tr.History[v][k] != refHist[v][k] {
					simExact = false
				}
			}
		}
		t.AddRow(w.name, n, units, tr.MinTicks(), skewOK && ticksOK, simExact)
	}
	return t
}

// E6BFS reproduces Section 4.3: labels are distances mod 3; found/failed
// verdicts are exact; total time ~ 2·dist (out and back).
func E6BFS(opts Options) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Breadth-first search (Algorithm 4.1)",
		Claim:   "labels = dist mod 3; found iff target reachable; ~2·dist rounds",
		Columns: []string{"graph", "n", "target", "labels ok", "verdict ok", "rounds", "2*dist+2"},
	}
	type wl struct {
		name      string
		build     func() *graph.Graph
		origin    int
		target    int
		reachable bool
	}
	wls := []wl{
		{"path-far", func() *graph.Graph { return graph.Path(60) }, 0, 59, true},
		{"grid", func() *graph.Graph { return graph.Grid(10, 10) }, 0, 99, true},
		{"cut-path", func() *graph.Graph {
			g := graph.Path(40)
			g.RemoveEdge(20, 21)
			return g
		}, 0, 39, false},
		{"gnp", func() *graph.Graph {
			rng := rand.New(rand.NewSource(opts.Seed + 9))
			return graph.RandomConnectedGNP(80, 0.05, rng)
		}, 0, 79, true},
	}
	if opts.Quick {
		wls = wls[:2]
	}
	for _, w := range wls {
		g := w.build()
		n := g.NumNodes()
		dist := g.BFSDistances(w.origin)
		res, err := bfs.Run(g, w.origin, []int{w.target}, 40*n, opts.Seed)
		if err != nil {
			continue
		}
		labelsOK := true
		for v := 0; v < g.Cap(); v++ {
			if !g.Alive(v) {
				continue
			}
			want := bfs.NoLabel
			if dist[v] != graph.Unreachable {
				want = int8(dist[v] % 3)
			}
			if res.Labels[v] != want {
				labelsOK = false
			}
		}
		verdictOK := res.Found == w.reachable
		bound := "-"
		if w.reachable {
			bound = itoaSimple(2*dist[w.target] + 2)
		}
		t.AddRow(w.name, n, w.target, labelsOK, verdictOK, res.Rounds, bound)
	}
	return t
}
