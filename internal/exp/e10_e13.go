package exp

import (
	"math"
	"math/rand"

	"repro/internal/algo/election"
	"repro/internal/fssga"
	"repro/internal/graph"
	"repro/internal/iwa"
	"repro/internal/sensitivity"
	"repro/internal/sm"
	"repro/internal/stats"
)

// E10Election reproduces Section 4.7 / Claims 4.1–4.2: exactly one stable
// leader whp; Θ(log n) phases; O(n log n) total rounds; per-phase
// elimination of a constant fraction of remainers.
func E10Election(opts Options) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Randomized leader election (Algorithm 4.4)",
		Claim: "unique leader whp in O(n log n) rounds over Θ(log n) phases; ≥1/4 elimination/phase",
		Columns: []string{"graph", "n", "elected", "mean rounds", "rounds/(n·log2 n)",
			"mean phases", "phases/log2 n", "mean elim frac"},
	}
	type wl struct {
		name  string
		build func(n int) *graph.Graph
	}
	wls := []wl{
		{"cycle", func(n int) *graph.Graph { return graph.Cycle(n) }},
		{"grid", func(n int) *graph.Graph { s := intSqrt(n); return graph.Grid(s, s) }},
		{"gnp", func(n int) *graph.Graph {
			rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
			return graph.RandomConnectedGNP(n, 4.0/float64(n), rng)
		}},
	}
	sizes := []int{8, 16, 32, 64}
	trials := 6
	if opts.Quick {
		sizes = []int{8, 16}
		trials = 3
	}
	var xs, ys, pxs, pys []float64
	for _, w := range wls {
		for _, n := range sizes {
			elected := 0
			var rounds, phases, elim []float64
			for i := 0; i < trials; i++ {
				g := w.build(n)
				nn := g.NumNodes()
				tr := election.New(g, opts.Seed+int64(i)*71)
				// Budget ~10x the typical completion time; runs that
				// exceed it are counted (honestly) as not elected.
				if _, ok := tr.Run(300*nn*log2int(nn), 3*nn+10); !ok {
					continue
				}
				elected++
				rounds = append(rounds, float64(tr.Rounds))
				phases = append(phases, float64(tr.Phases))
				// Mean per-phase elimination fraction while >1 remained.
				hist := tr.RemainingPerPhase
				var fracs []float64
				for j := 0; j+1 < len(hist) && hist[j] > 1; j++ {
					fracs = append(fracs, float64(hist[j]-hist[j+1])/float64(hist[j]))
				}
				if len(fracs) > 0 {
					elim = append(elim, stats.Mean(fracs))
				}
			}
			if len(rounds) == 0 {
				t.AddRow(w.name, n, fracStr(0, trials), "-", "-", "-", "-", "-")
				continue
			}
			nn := float64(n)
			lg := math.Log2(nn)
			mr, mp := stats.Mean(rounds), stats.Mean(phases)
			me := 0.0
			if len(elim) > 0 {
				me = stats.Mean(elim)
			}
			t.AddRow(w.name, n, fracStr(elected, trials), mr, mr/(nn*lg), mp, mp/lg, me)
			if w.name == "cycle" {
				xs = append(xs, nn)
				ys = append(ys, mr)
				pxs = append(pxs, nn)
				pys = append(pys, mp)
			}
		}
	}
	if len(xs) >= 2 {
		fit := stats.LogLogFit(xs, ys)
		t.Note("cycle rounds vs n log-log slope %.2f (n·log n predicts ≈1.0–1.3)", fit.Slope)
		pfit := stats.LogLogFit(pxs, pys)
		t.Note("cycle phases vs n log-log slope %.2f (Θ(log n) predicts ≈0–0.5)", pfit.Slope)
	}

	// Ablation (DESIGN.md #4): disable the uniqueness-verification
	// channels and count runs ending with multiple leaders/remainers.
	ablTrials := 2 * trials
	ablBad := 0
	for i := 0; i < ablTrials; i++ {
		g := graph.Cycle(8)
		tr := election.NewWithoutVerification(g, opts.Seed+int64(i)*17)
		tr.Run(40000*8, 34)
		if len(tr.Leaders()) > 1 || tr.Remaining() > 1 {
			ablBad++
		}
	}
	t.Note("ablation (no colour/agent verification): %d/%d runs ended with duplicate leaders or multiple remainers (full algorithm: 0)",
		ablBad, ablTrials)
	return t
}

// E11Conversions reproduces Theorem 3.7: the three program models compute
// the same class, with constructive conversions whose size blowup is
// measured (the paper notes it can be exponential).
func E11Conversions(opts Options) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Sequential ≡ Parallel ≡ Mod-Thresh (Theorem 3.7)",
		Claim: "all three classes equal; conversions may blow up program size exponentially",
		Columns: []string{"source", "|Q|", "src size", "→mod-thresh", "→parallel",
			"→sequential", "equiv ok"},
	}
	trials := 20
	if opts.Quick {
		trials = 8
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	okAll := 0
	for i := 0; i < trials; i++ {
		numQ := 1 + rng.Intn(2)
		s0 := sm.RandomCounterSequential(numQ, 2+rng.Intn(2), 3, 2, rng)
		mt, err := sm.SequentialToModThresh(s0)
		if err != nil {
			continue
		}
		par, err := sm.ModThreshToParallel(mt)
		if err != nil {
			continue
		}
		s1, err := sm.ParallelToSequential(par)
		if err != nil {
			continue
		}
		equiv := sm.Equivalent(s0, mt, numQ, 5) == nil &&
			sm.Equivalent(mt, par, numQ, 5) == nil &&
			sm.Equivalent(par, s1, numQ, 5) == nil
		if equiv {
			okAll++
		}
		if i < 6 {
			t.AddRow("counter-seq", numQ, s0.Size(), mt.Size(), par.Size(), s1.Size(), equiv)
		}
	}
	t.Note("full conversion cycle equivalent on %d/%d random programs (inputs up to length 5)", okAll, trials)

	// Exhaustive census of a tiny program space: what fraction of ALL
	// sequential programs are SM, and how many functions they realize.
	cen := sm.SequentialCensus(2, 2, 2, 5)
	t.Note("program-space census |Q|=2, |W|=2, |R|=2: %d/%d programs symmetric, realizing %d distinct SM functions",
		cen.Symmetric, cen.Total, cen.DistinctFunctions)

	// Blowup scaling on the threshold axis (the Section 5 "tape" remark:
	// counter families parameterized by N): capped counting to N.
	for _, cap := range []int{2, 4, 8} {
		m := sm.CappedCount(2, 1, cap)
		p, err := sm.ModThreshToParallel(m)
		if err != nil {
			continue
		}
		s, err := sm.ParallelToSequential(p)
		if err != nil {
			continue
		}
		t.AddRow("capped-count-"+itoaSimple(cap), 2, m.Size(), m.Size(), p.Size(), s.Size(),
			sm.Equivalent(m, s, 2, 8) == nil)
	}

	// Blowup scaling: parity over growing moduli.
	for _, mod := range []int{2, 3, 5} {
		m := sm.CountMod(2, 1, mod)
		p, err := sm.ModThreshToParallel(m)
		if err != nil {
			continue
		}
		s, err := sm.ParallelToSequential(p)
		if err != nil {
			continue
		}
		t.AddRow("count-mod-"+itoaSimple(mod), 2, m.Size(), m.Size(), p.Size(), s.Size(),
			sm.Equivalent(m, s, 2, 8) == nil)
	}
	return t
}

// E12IWA reproduces Section 5.1: an IWA simulates one FSSGA round in Θ(m)
// agent steps, and an FSSGA simulates an IWA with O(log Δ) delay per move.
func E12IWA(opts Options) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "FSSGA ↔ isotonic web automaton (Section 5.1)",
		Claim:   "IWA simulates one FSSGA round in Θ(m); FSSGA simulates IWA with O(log Δ) delay",
		Columns: []string{"direction", "param", "value", "cost", "cost/param"},
	}
	// Direction 1: IWA simulating FSSGA, steps vs m.
	numQ := 4
	orFn := sm.BitwiseOR(2)
	fs := make([]sm.Func, numQ)
	for q := 0; q < numQ; q++ {
		fs[q] = orSelfFn{or: orFn, self: q}
	}
	auto, err := fssga.NewDeterministicFormal(numQ, fs)
	if err == nil {
		sizes := []int{20, 40, 80}
		if opts.Quick {
			sizes = []int{20, 40}
		}
		var xs, ys []float64
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
			g := graph.RandomConnectedGNP(n, 6.0/float64(n), rng)
			states := make([]int, g.Cap())
			for v := range states {
				states[v] = rng.Intn(numQ)
			}
			_, steps, err := iwa.SimulateRound(g, auto, states)
			if err != nil {
				continue
			}
			m := float64(g.NumEdges())
			t.AddRow("IWA→FSSGA round", "m="+itoaSimple(g.NumEdges()), n, steps, float64(steps)/m)
			xs = append(xs, m)
			ys = append(ys, float64(steps))
		}
		if len(xs) >= 2 {
			fit := stats.LogLogFit(xs, ys)
			t.Note("agent steps vs m log-log slope %.2f (Θ(m) predicts ≈1)", fit.Slope)
		}
	}

	// Direction 2: FSSGA simulating IWA, rounds per move vs Δ.
	marker := &iwa.Machine{
		NumStates: 1,
		NumLabels: 2,
		Rules: []iwa.Rule{
			{State: 0, CurLabel: 0, CondLabel: iwa.NoCond, MoveLabel: 0, NewLabel: 1, NewState: 0},
			{State: 0, CurLabel: 0, CondLabel: iwa.NoCond, MoveLabel: iwa.NoMove, NewLabel: 1, NewState: 0},
		},
	}
	degrees := []int{4, 16, 64, 256}
	trials := 10
	if opts.Quick {
		degrees = []int{4, 16}
		trials = 4
	}
	var dxs, dys []float64
	for _, d := range degrees {
		total := 0
		count := 0
		for i := 0; i < trials; i++ {
			g := graph.Star(d + 1)
			sim, err := iwa.NewSimulator(marker, g, make([]int, g.Cap()), 0, opts.Seed+int64(i)*7)
			if err != nil {
				continue
			}
			for r := 0; sim.Moves < 1 && r < 100000; r++ {
				if !sim.Round() {
					break
				}
			}
			if sim.Moves >= 1 {
				total += sim.Rounds
				count++
			}
		}
		if count == 0 {
			continue
		}
		mean := float64(total) / float64(count)
		t.AddRow("FSSGA→IWA move", "Δ="+itoaSimple(d), d, mean, mean/math.Log2(float64(d)+1))
		dxs = append(dxs, float64(d))
		dys = append(dys, mean)
	}
	if len(dxs) >= 2 {
		fit := stats.LogLogFit(dxs, dys)
		t.Note("rounds/move vs Δ log-log slope %.2f (O(log Δ) predicts ≈0–0.3)", fit.Slope)
	}
	return t
}

type orSelfFn struct {
	or   sm.Func
	self int
}

func (o orSelfFn) Eval(qs []int) int { return o.or.Eval(qs) | o.self }

// E13Sensitivity reproduces the Section 2 sensitivity taxonomy: measured
// critical-set sizes and failure behaviour for each algorithm class.
func E13Sensitivity(opts Options) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Sensitivity taxonomy (Section 2)",
		Claim: "decentralized 0, agent-based 1, tree-based Θ(n)",
		Columns: []string{"algorithm", "claimed k", "max |χ|", "trials",
			"critical runs", "non-critical", "correct non-critical"},
	}
	trials := 12
	n := 24
	if opts.Quick {
		trials = 5
		n = 16
	}
	probes := []sensitivity.Probe{
		sensitivity.CensusProbe(14, 8, 2),
		sensitivity.ShortestPathProbe(func(g *graph.Graph) []int { return []int{0} }),
		sensitivity.BridgesProbe(),
		sensitivity.GreedyTouristProbe(),
		sensitivity.MilgramProbe(),
		sensitivity.BetaProbe(2 * n),
	}
	for _, p := range probes {
		row := sensitivity.Measure(p, trials, n, 0.08, opts.Seed)
		t.AddRow(row.Name, row.Claimed, row.MaxChi, row.Trials,
			row.CriticalRuns, row.NonCritical, row.CorrectNonCrit)
	}
	t.Note("0-sensitive algorithms must show 0 critical runs and 100%% correctness; tree-based algorithms show Θ(n)-sized χ and frequent critical hits")
	return t
}
