// Package exp is the experiment harness: one runner per experiment in
// DESIGN.md's per-experiment index (E1–E13), each regenerating the
// measured table for one quantitative claim of Pritchard & Vempala
// (SPAA 2006). The cmd/fssga-bench binary prints these tables, and
// EXPERIMENTS.md records paper-vs-measured values produced here.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options configures a run.
type Options struct {
	// Seed drives all randomness; a fixed seed reproduces tables exactly.
	Seed int64
	// Quick shrinks sweeps and trial counts (used by tests and -quick).
	Quick bool
}

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form observation line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table in aligned plain text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner is an experiment entry point.
type Runner func(Options) *Table

// Registry maps experiment IDs to their runners.
var Registry = map[string]Runner{
	"E1":  E1Census,
	"E2":  E2Bridges,
	"E3":  E3ShortestPath,
	"E4":  E4TwoColor,
	"E5":  E5Synchronizer,
	"E6":  E6BFS,
	"E7":  E7RandomWalk,
	"E8":  E8Milgram,
	"E9":  E9Tourist,
	"E10": E10Election,
	"E11": E11Conversions,
	"E12": E12IWA,
	"E13": E13Sensitivity,
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}

// RunAll executes every experiment and writes all tables to w.
func RunAll(opts Options, w io.Writer) {
	for _, id := range IDs() {
		Registry[id](opts).Print(w)
	}
}

// PrintMarkdown renders the table as GitHub-flavoured markdown, used to
// regenerate the EXPERIMENTS.md tables.
func (t *Table) PrintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "**Claim:** %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}
