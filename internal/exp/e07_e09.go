package exp

import (
	"math"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/algo/randomwalk"
	"repro/internal/algo/traversal"
	"repro/internal/graph"
	"repro/internal/stats"
)

// E7RandomWalk reproduces Section 4.4: the walker moves from a degree-d
// node after an expected Θ(log d) tournament rounds, and the induced walk
// law equals the uniform random walk (compared via hitting times against
// the direct internal/agent walker).
func E7RandomWalk(opts Options) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "FSSGA random walk (Algorithm 4.2)",
		Claim:   "E[rounds per move] = Θ(log d); induced law = uniform random walk",
		Columns: []string{"degree d", "mean rounds/move", "rounds / log2(d)", "trials"},
	}
	degrees := []int{2, 8, 32, 128, 512}
	trials := 30
	if opts.Quick {
		degrees = []int{2, 8, 32}
		trials = 10
	}
	var xs, ys []float64
	for _, d := range degrees {
		var rounds []float64
		for i := 0; i < trials; i++ {
			g := graph.Star(d + 1)
			tr, err := randomwalk.New(g, 0, opts.Seed+int64(i)*59)
			if err != nil {
				continue
			}
			if _, ok := tr.RunMoves(1, 1000000); ok {
				rounds = append(rounds, float64(tr.MoveRounds[0]))
			}
		}
		mean := stats.Mean(rounds)
		t.AddRow(d, mean, mean/math.Log2(float64(d)+1), len(rounds))
		xs = append(xs, float64(d))
		ys = append(ys, mean)
	}
	fit := stats.SemiLogXFit(xs, ys)
	t.Note("semilog fit rounds = %.2f·ln(d) + %.2f, R2 %.2f (Θ(log d) predicts a line)",
		fit.Slope, fit.Intercept, fit.R2)
	llf := stats.LogLogFit(xs, ys)
	t.Note("log-log slope %.2f (linear-in-d would be 1.0)", llf.Slope)

	// Walk-law comparison: hitting time 0 -> n/2 on a cycle, FSSGA walker
	// moves vs direct walker steps.
	n := 16
	lawTrials := trials
	var fssgaMoves, directSteps []float64
	for i := 0; i < lawTrials; i++ {
		g := graph.Cycle(n)
		tr, err := randomwalk.New(g, 0, opts.Seed+int64(i)*97)
		if err != nil {
			continue
		}
		for tr.Pos != n/2 {
			if _, ok := tr.RunMoves(1, 1000000); !ok {
				break
			}
		}
		fssgaMoves = append(fssgaMoves, float64(tr.Moves))

		r := rand.New(rand.NewSource(opts.Seed + int64(i)*89))
		s, ok := agent.HittingTime(graph.Cycle(n), 0, n/2, 10000000, r)
		if ok {
			directSteps = append(directSteps, float64(s))
		}
	}
	mf, md := stats.Mean(fssgaMoves), stats.Mean(directSteps)
	t.Note("hitting time 0→n/2 on C%d: FSSGA %.1f moves vs direct %.1f steps (ratio %.2f; equal laws ⇒ ≈1)",
		n, mf, md, mf/md)
	ks := stats.KSStatistic(fssgaMoves, directSteps)
	t.Note("two-sample KS statistic %.3f vs 5%% threshold %.3f (equal laws ⇒ below)",
		ks, stats.KSThreshold(len(fssgaMoves), len(directSteps), 0.05))
	return t
}

// E8Milgram reproduces Section 4.5: the hand moves exactly 2n−2 times, the
// arm stays an induced path, and total time is O(n log n).
func E8Milgram(opts Options) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Milgram traversal (Algorithm 4.3)",
		Claim:   "hand moves exactly 2n−2 times; total time O(n log n)",
		Columns: []string{"graph", "n", "hand moves", "2n-2", "mean rounds", "rounds/(n·log2 n)"},
	}
	sizes := []int{9, 16, 36, 64}
	trials := 8
	if opts.Quick {
		sizes = []int{9, 16}
		trials = 3
	}
	var xs, ys []float64
	for _, n := range sizes {
		side := intSqrt(n)
		var rounds []float64
		moves := -1
		for i := 0; i < trials; i++ {
			g := graph.Grid(side, side)
			tr, err := traversal.NewMilgram(g, 0, opts.Seed+int64(i)*41)
			if err != nil {
				continue
			}
			if _, done := tr.Run(40000 * n); !done {
				continue
			}
			rounds = append(rounds, float64(tr.Rounds))
			moves = tr.HandMoves
		}
		nn := side * side
		mean := stats.Mean(rounds)
		t.AddRow("grid", nn, moves, 2*nn-2, mean, mean/(float64(nn)*math.Log2(float64(nn))))
		xs = append(xs, float64(nn))
		ys = append(ys, mean)
	}
	fit := stats.LogLogFit(xs, ys)
	t.Note("log-log slope of rounds vs n: %.2f (n·log n predicts ≈1.0–1.2)", fit.Slope)
	return t
}

// E9Tourist reproduces Section 4.6: the greedy tourist completes in
// O(n log² n) charged rounds with sensitivity 1, versus Milgram's Θ(n)
// sensitivity under identical fault schedules.
func E9Tourist(opts Options) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Greedy tourist (Section 4.6) and sensitivity comparison",
		Claim:   "traversal in O(n log² n); sensitivity 1 vs Milgram's Θ(n)",
		Columns: []string{"graph", "n", "mean moves", "moves/(n·log2 n)", "mean rounds", "rounds/(n·log2² n)"},
	}
	sizes := []int{16, 36, 64, 100}
	trials := 8
	if opts.Quick {
		sizes = []int{16, 36}
		trials = 3
	}
	var xs, ys []float64
	for _, n := range sizes {
		side := intSqrt(n)
		var moves, rounds []float64
		for i := 0; i < trials; i++ {
			g := graph.Grid(side, side)
			tr, err := traversal.NewTourist(g, 0, opts.Seed+int64(i)*43)
			if err != nil {
				continue
			}
			if !tr.Run(200 * n) {
				continue
			}
			moves = append(moves, float64(tr.Moves))
			rounds = append(rounds, float64(tr.Rounds))
		}
		nn := float64(side * side)
		lg := math.Log2(nn)
		t.AddRow("grid", side*side, stats.Mean(moves), stats.Mean(moves)/(nn*lg),
			stats.Mean(rounds), stats.Mean(rounds)/(nn*lg*lg))
		xs = append(xs, nn)
		ys = append(ys, stats.Mean(rounds))
	}
	fit := stats.LogLogFit(xs, ys)
	t.Note("log-log slope of rounds vs n: %.2f (n·log² n predicts ≈1.0–1.3)", fit.Slope)

	// Fault comparison: run Milgram until its arm has grown, then kill an
	// interior ARM node — a critical fault for Milgram's Θ(n)-sized χ but
	// a perfectly ordinary fault for the tourist, whose χ is just the
	// agent. The same victim is applied to both algorithms.
	faultTrials := 3 * trials
	touristOK, milgramOK := 0, 0
	attempts := 0
	for i := 0; i < faultTrials; i++ {
		gM := graph.Torus(4, 4)
		mt, err := traversal.NewMilgram(gM, 0, opts.Seed+int64(i))
		if err != nil {
			continue
		}
		// Grow the arm, then pick an interior arm node as the victim.
		victim := -1
		for r := 0; r < 4000 && victim == -1; r++ {
			mt.Round()
			for v := 1; v < gM.Cap(); v++ {
				if mt.Net.State(v).Status == traversal.Arm && v != mt.HandPos {
					victim = v
				}
			}
		}
		if victim == -1 {
			continue // arm never grew past the originator for this seed
		}
		attempts++
		gM.RemoveNode(victim)
		if _, done := mt.Run(400000); done && mt.VisitedCount() == gM.NumNodes() {
			milgramOK++
		}

		gT := graph.Torus(4, 4)
		tr, err := traversal.NewTourist(gT, 0, opts.Seed+int64(i))
		if err != nil {
			continue
		}
		for m := 0; m < 3; m++ {
			tr.MoveOnce(200)
		}
		if victim != tr.Pos {
			gT.RemoveNode(victim)
		}
		if tr.Run(4000) {
			touristOK++
		}
	}
	t.Note("arm-node fault on a 4x4 torus: tourist finished %d/%d, Milgram %d/%d (the fault is critical only for Milgram's χ)",
		touristOK, attempts, milgramOK, attempts)
	return t
}
