package exp

import (
	"math/rand"
	"strconv"

	"repro/internal/algo/synchronizer"
	"repro/internal/fssga"
	"repro/internal/graph"
)

// maxAutomaton spreads the maximum initial value — the deterministic
// reference algorithm used by the synchronizer experiment.
type maxAutomaton struct{}

// Step implements fssga.Automaton.
func (maxAutomaton) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	best := self
	view.ForEach(func(s, _ int) {
		if s > best {
			best = s
		}
	})
	return best
}

func newMaxNet(g *graph.Graph, seed int64) *fssga.Network[int] {
	return fssga.New[int](g, maxAutomaton{}, func(v int) int { return v }, seed)
}

func newWrappedMaxNet(g *graph.Graph, seed int64) *fssga.Network[synchronizer.State[int]] {
	return fssga.New[synchronizer.State[int]](g,
		synchronizer.Wrapped[int]{Inner: maxAutomaton{}},
		synchronizer.WrapInit(func(v int) int { return v }),
		seed)
}

func itoaSimple(n int) string { return strconv.Itoa(n) }
