package exp

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpts runs every experiment in its reduced configuration.
func quickOpts() Options { return Options{Seed: 42, Quick: true} }

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "c",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow(1, "x")
	tab.AddRow(2.5, "yy")
	tab.Note("note %d", 7)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== T: demo", "claim: c", "a", "bb", "2.5", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("ids = %v", ids)
	}
	if ids[0] != "E1" || ids[3] != "E4" || ids[9] != "E10" || ids[12] != "E13" {
		t.Fatalf("ids = %v", ids)
	}
}

// Every experiment must run in quick mode and produce a non-empty table.
// Claims themselves are verified by the focused assertions below and by
// each algorithm package's own tests.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tab := Registry[id](quickOpts())
			if tab.ID != id {
				t.Fatalf("table ID %q", tab.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			var buf bytes.Buffer
			tab.Print(&buf)
			if buf.Len() == 0 {
				t.Fatal("empty output")
			}
		})
	}
}

func TestE1AccuracyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab := E1Census(quickOpts())
	// Every fraction-within-2x cell must be >= 0.6.
	for _, row := range tab.Rows {
		frac := row[6]
		if frac < "0.6" && frac != "1" {
			t.Fatalf("low accuracy row: %v", row)
		}
	}
}

func TestE13SensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab := E13Sensitivity(quickOpts())
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	// 0-sensitive rows: no critical runs, all non-critical correct.
	for _, name := range []string{"fm-census", "shortest-path"} {
		row := byName[name]
		if row == nil {
			t.Fatalf("missing row %s", name)
		}
		if row[4] != "0" {
			t.Fatalf("%s had critical runs: %v", name, row)
		}
		if row[5] != row[6] {
			t.Fatalf("%s failed non-critical runs: %v", name, row)
		}
	}
	// β synchronizer: Θ(n)-sized χ.
	beta := byName["beta-synchronizer"]
	if beta == nil {
		t.Fatal("missing beta row")
	}
	if beta[2] == "0" || beta[2] == "1" {
		t.Fatalf("beta χ too small: %v", beta)
	}
}

func TestRunAllProducesAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	var buf bytes.Buffer
	RunAll(quickOpts(), &buf)
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "== "+id+":") {
			t.Fatalf("missing table %s", id)
		}
	}
}

func TestPrintMarkdown(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Claim: "c", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
	tab.Note("hello")
	var buf bytes.Buffer
	tab.PrintMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### T — demo", "**Claim:** c", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*hello*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
