package exp

import (
	"math/rand"

	"repro/internal/algo/census"
	"repro/internal/graph"
	"repro/internal/stats"
)

// E1Census reproduces the Section 1 claims about the Flajolet–Martin
// census: with k >= log2 n bits the common estimate is within a factor of
// 2 of n with high probability; under non-disconnecting edge faults
// nothing changes; and when the graph splits, each surviving component's
// estimate lies in [|G'|/2, 2|G0|].
func E1Census(opts Options) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Flajolet–Martin census accuracy",
		Claim: "estimate within factor 2 of n whp; under splits within [|G'|/2, 2|G0|]",
		Columns: []string{"n", "graph", "faults", "median est", "min", "max",
			"frac within 2x", "rounds<=diam+1"},
	}
	sizes := []int{64, 128, 256, 512}
	trials := 40
	if opts.Quick {
		sizes = []int{64, 128}
		trials = 10
	}
	cfg := func(seed int64) census.Config {
		return census.Config{Bits: 14, Sketches: 8, Seed: seed}
	}

	type workload struct {
		name  string
		build func(n int, rng *rand.Rand) *graph.Graph
	}
	workloads := []workload{
		{"gnp", func(n int, rng *rand.Rand) *graph.Graph {
			return graph.RandomConnectedGNP(n, 4.0/float64(n), rng)
		}},
		{"torus", func(n int, rng *rand.Rand) *graph.Graph {
			side := intSqrt(n)
			return graph.Torus(side, side)
		}},
	}

	for _, n := range sizes {
		for _, wl := range workloads {
			var ests []float64
			within := 0
			roundsOK := true
			for i := 0; i < trials; i++ {
				rng := rand.New(rand.NewSource(opts.Seed + int64(i)*31 + int64(n)))
				g := wl.build(n, rng)
				nLive := float64(g.NumNodes())
				diam := g.Diameter()
				res, err := census.Run(g, cfg(opts.Seed+int64(i)), 10*n)
				if err != nil {
					continue
				}
				est := res.Estimates[firstLive(g)]
				ests = append(ests, est)
				if est >= nLive/2 && est <= 2*nLive {
					within++
				}
				if res.Rounds > diam+1 {
					roundsOK = false
				}
			}
			s := stats.Summarize(ests)
			t.AddRow(n, wl.name, "none", s.Median, s.Min, s.Max,
				float64(within)/float64(trials), roundsOK)
		}

		// Edge-fault variant: kill 10% of edges (never bridges), estimates
		// must be unaffected in distribution.
		var ests []float64
		within := 0
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(opts.Seed + int64(i)*77 + int64(n)))
			g := graph.RandomConnectedGNP(n, 6.0/float64(n), rng)
			c := cfg(opts.Seed + int64(i))
			net, err := census.NewNetwork(g, c)
			if err != nil {
				continue
			}
			killNonBridges(g, g.NumEdges()/10, rng, net.SyncRound)
			net.RunSyncUntilQuiescent(10 * n)
			est := census.Estimate(net.State(firstLive(g)), c)
			ests = append(ests, est)
			if est >= float64(g.NumNodes())/2 && est <= 2*float64(n) {
				within++
			}
		}
		s := stats.Summarize(ests)
		t.AddRow(n, "gnp", "10% edges", s.Median, s.Min, s.Max,
			float64(within)/float64(trials), true)
	}

	// Split variant: cut the barbell bridge; each half's estimate must lie
	// in [|G'|/2, 2|G0|] (with the estimator's own whp slack).
	splitTrials := trials
	withinSplit := 0
	for i := 0; i < splitTrials; i++ {
		g := graph.Barbell(64, 1)
		n0 := g.NumNodes()
		c := cfg(opts.Seed + int64(i)*13)
		net, err := census.NewNetwork(g, c)
		if err != nil {
			continue
		}
		net.SyncRound()
		g.RemoveEdge(63, 64)
		net.RunSyncUntilQuiescent(10 * n0)
		est := census.Estimate(net.State(0), c)
		comp := float64(len(g.ComponentOf(0)))
		if est >= comp/2 && est <= 2*float64(n0) {
			withinSplit++
		}
	}
	t.Note("barbell split: %d/%d runs had component estimate in [|G'|/2, 2|G0|]",
		withinSplit, splitTrials)
	return t
}

func firstLive(g *graph.Graph) int {
	for v := 0; v < g.Cap(); v++ {
		if g.Alive(v) {
			return v
		}
	}
	return 0
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// killNonBridges removes up to k non-bridge edges, running betweenRounds
// after each removal to interleave faults with computation.
func killNonBridges(g *graph.Graph, k int, rng *rand.Rand, betweenRounds func()) {
	for i := 0; i < k; i++ {
		bridges := map[graph.Edge]bool{}
		for _, b := range g.Bridges() {
			bridges[b] = true
		}
		edges := g.Edges()
		rng.Shuffle(len(edges), func(a, b int) { edges[a], edges[b] = edges[b], edges[a] })
		removed := false
		for _, e := range edges {
			if !bridges[e] {
				g.RemoveEdge(e.U, e.V)
				removed = true
				break
			}
		}
		if !removed {
			return
		}
		betweenRounds()
	}
}
