package checkpoint

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func fullMeta(nodes int) Meta {
	return Meta{
		Kind: KindFull, Round: 12, Nodes: nodes, Seed: 42, TopoHash: 0xfeedbeef,
		BaseRound: -1, Target: "census", Workers: 4,
		Graph: trace.GraphSpec{Gen: "torus", N: nodes, Seed: 7}, FaultsApplied: 3,
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	meta := fullMeta(5)
	pay := Payload[int]{States: []int{3, 1, 4, 1, 5}, RNGPos: []uint64{0, 9, 0, 2, 0}}
	data, err := Encode(meta, pay)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(data); err != nil {
		t.Fatal(err)
	}
	peeked, err := PeekMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(peeked, meta) {
		t.Fatalf("PeekMeta = %+v, want %+v", peeked, meta)
	}
	gotMeta, gotPay, err := Decode[int](data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMeta, meta) || !reflect.DeepEqual(gotPay, pay) {
		t.Fatalf("decode mismatch: %+v / %+v", gotMeta, gotPay)
	}
}

func TestEnvelopeDetectsEveryBitFlip(t *testing.T) {
	data, err := Encode(fullMeta(3), Payload[int]{States: []int{7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off++ {
		for bit := uint(0); bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			if _, _, err := Decode[int](mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded silently", off, bit)
			}
		}
	}
}

func TestEnvelopeDetectsEveryTruncation(t *testing.T) {
	data, err := Encode(fullMeta(2), Payload[int]{States: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := Decode[int](data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded silently", n)
		}
	}
	// Appended garbage must fail too (checksum covers length).
	if _, _, err := Decode[int](append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("appended byte decoded silently")
	}
}

func TestEnvelopeErrorClasses(t *testing.T) {
	data, err := Encode(fullMeta(1), Payload[int]{States: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(data[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short data: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if err := Verify(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	if err := Verify(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped trailer: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[9] = 99 // version field (checksum recomputed to isolate the class)
	reseal(bad)
	if err := Verify(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("future version: %v", err)
	}
}

// reseal recomputes the checksum trailer after a deliberate mutation,
// so tests can reach the structural checks behind it.
func reseal(data []byte) {
	sum := newBodySum(data[:len(data)-tailSize])
	for i := 0; i < tailSize; i++ {
		data[len(data)-tailSize+i] = byte(sum >> (8 * (7 - i)))
	}
}

func newBodySum(body []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range body {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

func TestMetaValidation(t *testing.T) {
	cases := map[string]Meta{
		"unknown kind":      {Kind: "zip", BaseRound: -1},
		"negative round":    {Kind: KindFull, Round: -1, BaseRound: -1},
		"full with base":    {Kind: KindFull, BaseRound: 3},
		"delta no base":     {Kind: KindDelta, Round: 5, BaseRound: -1},
		"delta self base":   {Kind: KindDelta, Round: 5, BaseRound: 5},
		"delta future base": {Kind: KindDelta, Round: 5, BaseRound: 6},
	}
	for name, meta := range cases {
		data, err := Encode(meta, Payload[int]{})
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := PeekMeta(data); !errors.Is(err, ErrFormat) {
			t.Fatalf("%s: want ErrFormat, got %v", name, err)
		}
	}
}

func TestPayloadValidation(t *testing.T) {
	meta := fullMeta(4)
	if _, err := encodeDecode(meta, Payload[int]{States: []int{1}}); err == nil {
		t.Fatal("short state vector accepted")
	}
	if _, err := encodeDecode(meta, Payload[int]{States: []int{1, 2, 3, 4}, RNGPos: []uint64{1}}); err == nil {
		t.Fatal("short RNG vector accepted")
	}
	delta := meta
	delta.Kind, delta.BaseRound = KindDelta, 3
	if _, err := encodeDecode(delta, Payload[int]{Runs: []Run[int]{{Lo: 3, States: []int{1, 2}}}}); err == nil {
		t.Fatal("out-of-bounds delta run accepted")
	}
	if _, err := encodeDecode(delta, Payload[int]{Runs: []Run[int]{{Lo: 2, States: []int{1}}, {Lo: 0, States: []int{1}}}}); err == nil {
		t.Fatal("out-of-order delta runs accepted")
	}
	if _, err := encodeDecode(delta, Payload[int]{States: []int{1, 2, 3, 4}}); err == nil {
		t.Fatal("delta with full states accepted")
	}
}

func encodeDecode(meta Meta, pay Payload[int]) (Payload[int], error) {
	data, err := Encode(meta, pay)
	if err != nil {
		return Payload[int]{}, err
	}
	_, got, err := Decode[int](data)
	return got, err
}
