package checkpoint

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// TestDirFSStoreEndToEnd drives the production filesystem backend
// through the full store protocol: commits, retention, recovery sweep,
// and a loud refusal on a corrupted committed file.
func TestDirFSStoreEndToEnd(t *testing.T) {
	testutil.NoLeak(t)
	fs, err := NewDirFS(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fs, 2)
	for r := 1; r <= 3; r++ {
		if err := st.Write(r, envelope(t, r, r)); err != nil {
			t.Fatal(err)
		}
	}
	round, data, err := st.Latest()
	if err != nil || round != 3 {
		t.Fatalf("latest = %d, %v", round, err)
	}
	if !reflect.DeepEqual(data, envelope(t, 3, 3)) {
		t.Fatal("latest data mismatch")
	}
	rounds, err := st.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{2, 3}) {
		t.Fatalf("retention kept %v", rounds)
	}

	// A crash landing: stray intent + tmp from an interrupted commit.
	if err := fs.WriteFile(intentName(9), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(tmpName(9), []byte("partial")); err != nil {
		t.Fatal(err)
	}
	if round, _, err := st.Latest(); err != nil || round != 3 {
		t.Fatalf("recovery: round=%d err=%v", round, err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("protocol files not swept: %v", names)
	}

	// Remove of a missing file is not an error (recovery is idempotent).
	if err := fs.Remove("ckpt-000000000099.intent"); err != nil {
		t.Fatal(err)
	}

	// Corrupt a committed byte on disk: load must refuse loudly.
	data, err = fs.ReadFile(finalName(3))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := fs.WriteFile(finalName(3), data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Latest(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt committed file on disk: %v", err)
	}
}

// TestFaultFSPassThrough covers the inspection surface of the fault shim
// when disarmed: reads and listings reach the inner FS, and the crash
// flag stays down.
func TestFaultFSPassThrough(t *testing.T) {
	testutil.NoLeak(t)
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	if err := ffs.WriteFile("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if ffs.Crashed() {
		t.Fatal("disarmed shim reports crashed")
	}
	names, err := ffs.List()
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if _, err := ffs.ReadFile("a"); err != nil {
		t.Fatal(err)
	}

	ffs.CrashAtUnit(0)
	if err := ffs.WriteFile("b", []byte{2}); err == nil {
		t.Fatal("write survived the crash unit")
	}
	if !ffs.Crashed() {
		t.Fatal("crash flag not raised")
	}
	if _, err := ffs.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash list: %v", err)
	}
	if _, err := ffs.ReadFile("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
}
