package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Store commits checkpoint envelopes into an FS under a write-ahead
// intent protocol and recovers the latest committed one after a crash.
//
// Commit protocol for round r (each step is a separate FS mutation, so
// a crash can land between any two — or inside one, see FaultFS):
//
//  1. write intent record  ckpt-r.intent
//  2. write envelope to    ckpt-r.fssga.tmp
//  3. rename tmp →         ckpt-r.fssga      (the atomic commit point)
//  4. remove intent
//  5. prune checkpoints older than the retention window
//
// Recovery rules (Latest):
//
//   - intent present, final file present and Verify-clean: the crash hit
//     after step 3 — the commit happened; the leftover intent (and tmp)
//     are swept and the checkpoint counts.
//   - intent present otherwise: the crash hit before the commit point —
//     the attempt is rolled back silently (tmp/final remnants removed)
//     and an older checkpoint serves.
//   - NO intent, but the newest committed file fails Verify: this is
//     not an interrupted write — it is corruption of data the store had
//     durably committed, and it fails LOUDLY with ErrChecksum (or
//     ErrTruncated/ErrFormat). Falling back silently here would turn
//     disk rot into wrong answers.
type Store struct {
	fs   FS
	keep int // committed checkpoints to retain; <1 means keep all
}

// ErrNoCheckpoint is returned by Latest when the store holds no
// committed checkpoint at all.
var ErrNoCheckpoint = errors.New("checkpoint: no committed checkpoint")

// NewStore returns a store over fs retaining the newest keep committed
// checkpoints (keep < 1 retains everything). A delta chain needs its
// base, so callers using delta checkpoints every round should keep at
// least one full-checkpoint interval.
func NewStore(fs FS, keep int) *Store { return &Store{fs: fs, keep: keep} }

const (
	finalSuffix  = ".fssga"
	tmpSuffix    = ".fssga.tmp"
	intentSuffix = ".intent"
)

func finalName(round int) string  { return fmt.Sprintf("ckpt-%012d%s", round, finalSuffix) }
func tmpName(round int) string    { return fmt.Sprintf("ckpt-%012d%s", round, tmpSuffix) }
func intentName(round int) string { return fmt.Sprintf("ckpt-%012d%s", round, intentSuffix) }

// parseName extracts the round from a store filename; ok is false for
// foreign files, which the store ignores entirely.
func parseName(name string) (round int, suffix string, ok bool) {
	rest, found := strings.CutPrefix(name, "ckpt-")
	if !found {
		return 0, "", false
	}
	for _, suf := range []string{tmpSuffix, intentSuffix, finalSuffix} {
		if num, had := strings.CutSuffix(rest, suf); had {
			if len(num) != 12 {
				return 0, "", false
			}
			r := 0
			for _, c := range num {
				if c < '0' || c > '9' {
					return 0, "", false
				}
				r = r*10 + int(c-'0')
			}
			return r, suf, true
		}
	}
	return 0, "", false
}

// Write commits one encoded envelope for the given round. On a nil
// return the checkpoint is durably committed; on an error the store is
// in a state recovery handles (the attempt rolls back, earlier
// checkpoints still serve).
func (s *Store) Write(round int, data []byte) error {
	if round < 0 {
		return fmt.Errorf("checkpoint: negative round %d", round)
	}
	if err := s.fs.WriteFile(intentName(round), []byte(finalName(round)+"\n")); err != nil {
		return fmt.Errorf("checkpoint: write intent: %w", err)
	}
	if err := s.fs.WriteFile(tmpName(round), data); err != nil {
		return fmt.Errorf("checkpoint: write tmp: %w", err)
	}
	if err := s.fs.Rename(tmpName(round), finalName(round)); err != nil {
		return fmt.Errorf("checkpoint: commit rename: %w", err)
	}
	if err := s.fs.Remove(intentName(round)); err != nil {
		return fmt.Errorf("checkpoint: clear intent: %w", err)
	}
	return s.prune()
}

// prune removes committed checkpoints beyond the retention window.
// Pruning never touches a round with a live intent (mid-commit).
func (s *Store) prune() error {
	if s.keep < 1 {
		return nil
	}
	rounds, _, err := s.scan()
	if err != nil {
		return err
	}
	for len(rounds) > s.keep {
		r := rounds[0]
		rounds = rounds[1:]
		if err := s.fs.Remove(finalName(r)); err != nil {
			return fmt.Errorf("checkpoint: prune round %d: %w", r, err)
		}
	}
	return nil
}

// scan lists the store: committed rounds ascending, plus the rounds
// with intent records outstanding.
func (s *Store) scan() (committed []int, intents []int, err error) {
	names, err := s.fs.List()
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: list store: %w", err)
	}
	for _, name := range names {
		round, suffix, ok := parseName(name)
		if !ok {
			continue
		}
		switch suffix {
		case finalSuffix:
			committed = append(committed, round)
		case intentSuffix:
			intents = append(intents, round)
		}
	}
	sort.Ints(committed)
	sort.Ints(intents)
	return committed, intents, nil
}

// Rounds returns the committed checkpoint rounds, ascending. Rounds
// mid-commit (intent outstanding) are excluded.
func (s *Store) Rounds() ([]int, error) {
	committed, intents, err := s.scan()
	if err != nil {
		return nil, err
	}
	open := make(map[int]bool, len(intents))
	for _, r := range intents {
		open[r] = true
	}
	kept := committed[:0]
	for _, r := range committed {
		if !open[r] {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

// Read returns the verified envelope of one committed round.
func (s *Store) Read(round int) ([]byte, error) {
	data, err := s.fs.ReadFile(finalName(round))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read round %d: %w", round, err)
	}
	if err := Verify(data); err != nil {
		return nil, fmt.Errorf("round %d: %w", round, err)
	}
	return data, nil
}

// Recover applies the crash-recovery rules: interrupted commits are
// resolved (completed ones kept, incomplete ones rolled back), stray
// tmp files are swept. It is idempotent and safe on a clean store.
func (s *Store) Recover() error {
	names, err := s.fs.List()
	if err != nil {
		return fmt.Errorf("checkpoint: list store: %w", err)
	}
	for _, name := range names {
		round, suffix, ok := parseName(name)
		if !ok || suffix != intentSuffix {
			continue
		}
		data, err := s.fs.ReadFile(finalName(round))
		if err == nil && Verify(data) == nil {
			// Crash after the commit point: the checkpoint is good,
			// only the intent cleanup was lost.
			if err := s.fs.Remove(name); err != nil {
				return fmt.Errorf("checkpoint: clear recovered intent: %w", err)
			}
			continue
		}
		// Crash before the commit point: roll the attempt back. A
		// torn/invalid final file under an intent is an interrupted
		// write, not corruption — removing it silently is the designed
		// behavior (the previous committed checkpoint serves).
		if err := s.fs.Remove(finalName(round)); err != nil {
			return fmt.Errorf("checkpoint: roll back round %d: %w", round, err)
		}
		if err := s.fs.Remove(name); err != nil {
			return fmt.Errorf("checkpoint: roll back intent %d: %w", round, err)
		}
	}
	for _, name := range names {
		if _, suffix, ok := parseName(name); ok && suffix == tmpSuffix {
			if err := s.fs.Remove(name); err != nil {
				return fmt.Errorf("checkpoint: sweep tmp: %w", err)
			}
		}
	}
	return nil
}

// Latest recovers the store and returns the newest committed
// checkpoint's round and verified envelope. ErrNoCheckpoint means the
// store is empty (nothing was ever committed, or every attempt was
// interrupted before its commit point). A committed-but-corrupt newest
// checkpoint is a loud error, never a silent fallback.
func (s *Store) Latest() (int, []byte, error) {
	if err := s.Recover(); err != nil {
		return 0, nil, err
	}
	committed, _, err := s.scan()
	if err != nil {
		return 0, nil, err
	}
	if len(committed) == 0 {
		return 0, nil, ErrNoCheckpoint
	}
	round := committed[len(committed)-1]
	data, err := s.Read(round)
	if err != nil {
		return 0, nil, err
	}
	return round, data, nil
}
