package checkpoint_test

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fssga"
	"repro/internal/graph"
	"repro/internal/trace"

	"repro/internal/testutil"
)

// coin is a probabilistic test automaton: its draws make RNG-position
// capture load-bearing in every fidelity assertion below.
type coin struct{}

func (coin) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	return (rnd.Intn(2) + view.CountMod(2, func(s int) bool { return s == 1 })) % 2
}

// spread is deterministic max-propagation: most nodes quiesce quickly,
// which is what makes delta checkpoints small.
type spread struct{}

func (spread) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	for q := 63; q > self; q-- {
		if view.AnyState(q) {
			return q
		}
	}
	return self
}

func newCoinNet(g *graph.Graph, seed int64) *fssga.Network[int] {
	return fssga.New[int](g, coin{}, func(v int) int { return v % 2 }, seed)
}

func TestManagerFullRestoreResumesBitIdentically(t *testing.T) {
	testutil.NoLeak(t)
	const k, m, seed = 7, 10, 99
	g := func() *graph.Graph { return graph.Torus(6, 6) }

	live := newCoinNet(g(), seed)
	store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
	mgr := checkpoint.NewManager(live, store, checkpoint.Meta{Target: "coin", Workers: 1})
	for i := 0; i < k; i++ {
		live.SyncRound()
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var future [][]int
	for i := 0; i < m; i++ {
		live.SyncRound()
		future = append(future, append([]int(nil), live.States()...))
	}

	// "Reboot": a fresh network over the same topology recipe and seed.
	revived := newCoinNet(g(), seed)
	meta, err := checkpoint.NewManager(revived, store, checkpoint.Meta{}).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Round != k || meta.Target != "coin" {
		t.Fatalf("restored meta %+v", meta)
	}
	if revived.Rounds != k {
		t.Fatalf("restored Rounds = %d", revived.Rounds)
	}
	for i := 0; i < m; i++ {
		revived.SyncRound()
		if !reflect.DeepEqual(revived.States(), future[i]) {
			t.Fatalf("round %d diverged after restore", k+i+1)
		}
	}
}

func TestManagerDeltaChainRestore(t *testing.T) {
	testutil.NoLeak(t)
	const seed = 5
	g := func() *graph.Graph { return graph.Path(4000) }
	init := func(v int) int {
		if v == 0 {
			return 63
		}
		return 0
	}
	live := fssga.New[int](g(), spread{}, init, seed)
	store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
	mgr := checkpoint.NewManager(live, store, checkpoint.Meta{Target: "spread"})

	// Full at round 2, deltas at 4, 6, 8.
	sizes := map[int]int{}
	for r := 1; r <= 8; r++ {
		live.SyncRound()
		if r%2 == 0 {
			var err error
			if r == 2 {
				err = mgr.Checkpoint()
			} else {
				err = mgr.CheckpointDelta()
			}
			if err != nil {
				t.Fatal(err)
			}
			data, err := store.Read(r)
			if err != nil {
				t.Fatal(err)
			}
			sizes[r] = len(data)
			meta, err := checkpoint.PeekMeta(data)
			if err != nil {
				t.Fatal(err)
			}
			wantKind := checkpoint.KindDelta
			if r == 2 {
				wantKind = checkpoint.KindFull
			}
			if meta.Kind != wantKind {
				t.Fatalf("round %d kind %q", r, meta.Kind)
			}
		}
	}
	want := append([]int(nil), live.States()...)

	// Deltas of a propagation wavefront must be much smaller than the
	// full snapshot.
	if sizes[8] >= sizes[2]/2 {
		t.Fatalf("delta size %d not small vs full %d", sizes[8], sizes[2])
	}

	revived := fssga.New[int](g(), spread{}, init, seed)
	meta, err := checkpoint.NewManager(revived, store, checkpoint.Meta{}).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Round != 8 || meta.Kind != checkpoint.KindDelta {
		t.Fatalf("restored meta %+v", meta)
	}
	if !reflect.DeepEqual(revived.States(), want) {
		t.Fatal("delta chain restore produced wrong states")
	}
}

func TestManagerDeltaBrokenChainFailsLoudly(t *testing.T) {
	testutil.NoLeak(t)
	live := fssga.New[int](graph.Path(300), spread{}, func(v int) int { return v % 64 }, 1)
	fs := checkpoint.NewMemFS()
	store := checkpoint.NewStore(fs, 0)
	mgr := checkpoint.NewManager(live, store, checkpoint.Meta{})
	live.SyncRound()
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	live.SyncRound()
	if err := mgr.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the full base: the delta is unusable and must say so.
	names, _ := fs.List()
	for _, n := range names {
		if strings.Contains(n, "000000000001") {
			if err := fs.Corrupt(n, 30, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	revived := fssga.New[int](graph.Path(300), spread{}, func(v int) int { return v % 64 }, 1)
	if _, err := checkpoint.NewManager(revived, store, checkpoint.Meta{}).Restore(); !errors.Is(err, checkpoint.ErrChecksum) {
		t.Fatalf("want ErrChecksum through the chain, got %v", err)
	}
}

func TestManagerRestoreGuards(t *testing.T) {
	testutil.NoLeak(t)
	live := newCoinNet(graph.Torus(4, 4), 3)
	store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
	mgr := checkpoint.NewManager(live, store, checkpoint.Meta{Graph: trace.GraphSpec{Gen: "torus", N: 16, Seed: 0}})
	live.SyncRound()
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	cases := map[string]*fssga.Network[int]{
		"wrong seed":     newCoinNet(graph.Torus(4, 4), 4),
		"wrong topology": newCoinNet(graph.Grid(4, 4), 3),
		"wrong size":     newCoinNet(graph.Torus(4, 5), 3),
	}
	for name, net := range cases {
		if _, err := checkpoint.NewManager(net, store, checkpoint.Meta{}).Restore(); err == nil {
			t.Fatalf("%s: restore accepted", name)
		}
	}

	// The original network restores fine — including after faults, as
	// long as the same faults are re-applied first.
	if _, err := mgr.Restore(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerTopoHashCoversFaults(t *testing.T) {
	testutil.NoLeak(t)
	build := func() *graph.Graph { return graph.Torus(4, 4) }
	live := newCoinNet(build(), 8)
	store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
	mgr := checkpoint.NewManager(live, store, checkpoint.Meta{})
	live.SyncRound()
	live.G.RemoveNode(5) // a fault between rounds
	live.SyncRound()
	mgr.Meta.FaultsApplied = 1
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Restoring onto the pre-fault topology must be refused...
	fresh := newCoinNet(build(), 8)
	if _, err := checkpoint.NewManager(fresh, store, checkpoint.Meta{}).Restore(); err == nil {
		t.Fatal("restore accepted without replaying faults")
	}
	// ...and accepted once the recorded fault is replayed, with the
	// meta telling the caller how many events to fast-forward.
	replayed := newCoinNet(build(), 8)
	replayed.G.RemoveNode(5)
	meta, err := checkpoint.NewManager(replayed, store, checkpoint.Meta{}).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if meta.FaultsApplied != 1 {
		t.Fatalf("FaultsApplied = %d", meta.FaultsApplied)
	}
}

// TestManagerRestoreAcrossEngines: one checkpoint, resumed under every
// engine and worker count — all must continue on the reference
// trajectory (the paper's execution-model equivalence, now surviving a
// process boundary).
func TestManagerRestoreAcrossEngines(t *testing.T) {
	testutil.NoLeak(t)
	const k, m, seed = 5, 8, 321
	n := 10 * 64 // comfortably multi-shard
	build := func() *fssga.Network[int] {
		return fssga.New[int](graph.Cycle(n), coin{}, func(v int) int { return v % 2 }, seed)
	}
	live := build()
	store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
	mgr := checkpoint.NewManager(live, store, checkpoint.Meta{})
	for i := 0; i < k; i++ {
		live.SyncRound()
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var future [][]int
	for i := 0; i < m; i++ {
		live.SyncRound()
		future = append(future, append([]int(nil), live.States()...))
	}

	for _, workers := range []int{1, 2, 3, 4, 8} {
		revived := build()
		if _, err := checkpoint.NewManager(revived, store, checkpoint.Meta{}).Restore(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			revived.SyncRoundParallel(workers)
			if !reflect.DeepEqual(revived.States(), future[i]) {
				t.Fatalf("w=%d: round %d diverged after restore", workers, k+i+1)
			}
		}
		revived.Close()
	}
}
