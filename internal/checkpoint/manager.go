package checkpoint

import (
	"fmt"

	"repro/internal/fssga"
)

// deltaChunk is the diff granularity of delta checkpoints, matching the
// engine's shard alignment (fssga's shardAlign): a changed node dirties
// its 64-node chunk, and contiguous dirty chunks coalesce into one run.
const deltaChunk = 64

// Manager ties a live fssga.Network to a Store: it captures full and
// delta checkpoints of the network and restores the latest committed
// one into a compatible network.
//
// The Meta template carries the application context (Target, Graph,
// Workers, FaultsApplied) stamped into every checkpoint; callers
// mutate it between checkpoints as their injector advances.
type Manager[S comparable] struct {
	net   *fssga.Network[S]
	store *Store

	// Meta is the template for checkpoint metadata; Kind, Round, Nodes,
	// Seed, TopoHash and BaseRound are overwritten at capture time.
	Meta Meta

	base      []S // states at the last successful checkpoint
	baseRound int // -1: no base, next delta falls back to full
}

// NewManager wraps net and store. meta seeds the metadata template.
func NewManager[S comparable](net *fssga.Network[S], store *Store, meta Meta) *Manager[S] {
	return &Manager[S]{net: net, store: store, Meta: meta, baseRound: -1}
}

// Checkpoint captures and commits a full checkpoint.
func (m *Manager[S]) Checkpoint() error { return m.capture(true) }

// CheckpointDelta captures and commits a delta checkpoint holding only
// the 64-node chunks that changed since the previous checkpoint. With
// no previous checkpoint this session (or after a Restore), it falls
// back to a full one.
func (m *Manager[S]) CheckpointDelta() error { return m.capture(false) }

func (m *Manager[S]) capture(full bool) error {
	states := m.net.States()
	meta := m.Meta
	meta.Round = m.net.Rounds
	meta.Nodes = len(states)
	meta.Seed = m.net.Seed()
	meta.TopoHash = m.net.Topology().ContentHash()
	meta.BaseRound = -1

	var pay Payload[S]
	// A delta at its base's own round would overwrite the base file
	// with a patch against itself; force full instead.
	if full || m.baseRound < 0 || m.baseRound >= meta.Round || len(m.base) != len(states) {
		meta.Kind = KindFull
		pay.States = states // Encode serializes, no mutation: safe to alias
	} else {
		meta.Kind = KindDelta
		meta.BaseRound = m.baseRound
		pay.Runs = diffRuns(m.base, states)
	}
	pay.RNGPos = m.net.RNGPositions()

	data, err := Encode(meta, pay)
	if err != nil {
		return err
	}
	if err := m.store.Write(meta.Round, data); err != nil {
		return err
	}
	m.base = append(m.base[:0], states...)
	m.baseRound = meta.Round
	return nil
}

// diffRuns returns the changed 64-node chunks of cur relative to base,
// coalescing adjacent dirty chunks into single runs. The run slices ARE
// the delta payload handed to Encode, so their allocation is the cost of
// the checkpoint itself, proportional to churn — the audits below record
// that the scan loop around them stays allocation-free.
//
//fssga:hotpath
func diffRuns[S comparable](base, cur []S) []Run[S] {
	var runs []Run[S]
	n := len(cur)
	for lo := 0; lo < n; {
		hi := lo + deltaChunk
		if hi > n {
			hi = n
		}
		dirty := false
		for v := lo; v < hi; v++ {
			if base[v] != cur[v] {
				dirty = true
				break
			}
		}
		if dirty {
			if len(runs) > 0 && runs[len(runs)-1].Lo+len(runs[len(runs)-1].States) == lo {
				last := &runs[len(runs)-1]
				//fssga:alloc(the extended run is the delta payload; its growth is the checkpoint's churn cost)
				last.States = append(last.States, cur[lo:hi]...)
			} else {
				//fssga:alloc(each run is the delta payload; one backing array per dirty region is the checkpoint's churn cost)
				runs = append(runs, Run[S]{Lo: lo, States: append([]S(nil), cur[lo:hi]...)})
			}
		}
		lo = hi
	}
	return runs
}

// Restore loads the newest committed checkpoint (resolving its delta
// chain back to a full base), verifies it matches the network — node
// count, master seed, and the content hash of the network's *current*
// topology, so the caller must have already rebuilt the topology the
// checkpoint was taken on, faults included — and installs states, round
// counter and RNG stream positions. It returns the restored meta; its
// FaultsApplied tells the caller how far to fast-forward its injector.
//
// After a successful restore the manager's delta base is reset: the
// next CheckpointDelta writes a full checkpoint.
func (m *Manager[S]) Restore() (Meta, error) {
	round, data, err := m.store.Latest()
	if err != nil {
		return Meta{}, err
	}
	meta, pay, err := Decode[S](data)
	if err != nil {
		return Meta{}, err
	}
	states, err := m.resolveChain(meta, pay)
	if err != nil {
		return Meta{}, err
	}

	if meta.Nodes != len(m.net.States()) {
		return Meta{}, fmt.Errorf("checkpoint: round %d holds %d nodes, network has %d",
			round, meta.Nodes, len(m.net.States()))
	}
	if meta.Seed != m.net.Seed() {
		return Meta{}, fmt.Errorf("checkpoint: round %d was seeded %d, network seeded %d",
			round, meta.Seed, m.net.Seed())
	}
	if got := m.net.Topology().ContentHash(); got != meta.TopoHash {
		return Meta{}, fmt.Errorf("checkpoint: round %d topology hash %016x, network topology %016x — rebuild the topology (faults included) before restoring",
			round, meta.TopoHash, got)
	}
	if err := m.net.RestoreStates(states, meta.Round); err != nil {
		return Meta{}, err
	}
	if err := m.net.RestoreRNGPositions(pay.RNGPos); err != nil {
		return Meta{}, err
	}
	m.base = nil
	m.baseRound = -1
	return meta, nil
}

// resolveChain materializes the full state vector behind a checkpoint:
// a full checkpoint is its own answer; a delta walks back through its
// base rounds to a full checkpoint, then patches forward. A missing or
// invalid link is a loud error — a delta without its base is as
// unusable as a corrupt file.
func (m *Manager[S]) resolveChain(meta Meta, pay Payload[S]) ([]S, error) {
	if meta.Kind == KindFull {
		return append([]S(nil), pay.States...), nil
	}
	deltas := []Payload[S]{pay}
	cur := meta
	for cur.Kind == KindDelta {
		if len(deltas) > 1<<20 {
			return nil, fmt.Errorf("%w: delta chain does not terminate", ErrFormat)
		}
		data, err := m.store.Read(cur.BaseRound)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: delta of round %d: base %w", cur.Round, err)
		}
		baseMeta, basePay, err := Decode[S](data)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: delta base round %d: %w", cur.BaseRound, err)
		}
		if baseMeta.Round != cur.BaseRound || baseMeta.Nodes != meta.Nodes {
			return nil, fmt.Errorf("%w: base round %d resolves to round %d (%d nodes)",
				ErrFormat, cur.BaseRound, baseMeta.Round, baseMeta.Nodes)
		}
		if baseMeta.Kind == KindFull {
			states := append([]S(nil), basePay.States...)
			for i := len(deltas) - 1; i >= 0; i-- {
				for _, run := range deltas[i].Runs {
					copy(states[run.Lo:], run.States)
				}
			}
			return states, nil
		}
		deltas = append(deltas, basePay)
		cur = baseMeta
	}
	return nil, fmt.Errorf("%w: delta chain reached non-delta non-full kind", ErrFormat)
}
