package checkpoint_test

import (
	"testing"
	"testing/quick"

	"repro/internal/algo/bfs"
	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/randomwalk"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/synchronizer"
	"repro/internal/algo/twocolor"
	"repro/internal/checkpoint"
	"repro/internal/testutil"
)

// TestRoundTripAllAutomata: checkpoint encode/decode is the identity on
// arbitrary state vectors of every registered automaton's state type —
// the property the whole durability story rests on. Generators are
// testing/quick over the exported state fields; seeds are pinned via
// testutil.Quick so failures replay.
func TestRoundTripAllAutomata(t *testing.T) {
	propRoundTrip[census.State](t, "census", 101)
	propRoundTrip[shortestpath.State](t, "shortestpath", 102)
	propRoundTrip[bfs.State](t, "bfs", 103)
	propRoundTrip[election.State](t, "election", 104)
	propRoundTrip[twocolor.State](t, "twocolor", 105)
	propRoundTrip[randomwalk.State](t, "randomwalk", 106)
	propRoundTrip[synchronizer.State[int]](t, "synchronizer", 107)
}

func propRoundTrip[S comparable](t *testing.T, name string, seed int64) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		prop := func(states []S, rngDraws []uint16, round uint16, faults uint8, workers uint8) bool {
			meta := checkpoint.Meta{
				Kind: checkpoint.KindFull, Round: int(round), Nodes: len(states),
				Seed: seed, TopoHash: uint64(round) * 0x9E3779B97F4A7C15, BaseRound: -1,
				Target: name, Workers: int(workers), FaultsApplied: int(faults),
			}
			pay := checkpoint.Payload[S]{States: states}
			if len(rngDraws) >= len(states) {
				pos := make([]uint64, len(states))
				for i := range pos {
					pos[i] = uint64(rngDraws[i])
				}
				pay.RNGPos = pos
			}
			data, err := checkpoint.Encode(meta, pay)
			if err != nil {
				t.Logf("encode: %v", err)
				return false
			}
			gotMeta, gotPay, err := checkpoint.Decode[S](data)
			if err != nil {
				t.Logf("decode: %v", err)
				return false
			}
			if gotMeta != meta {
				t.Logf("meta mismatch: %+v != %+v", gotMeta, meta)
				return false
			}
			if len(gotPay.States) != len(states) {
				return false
			}
			for i := range states {
				if gotPay.States[i] != states[i] {
					return false
				}
			}
			if len(gotPay.RNGPos) != len(pay.RNGPos) {
				return false
			}
			for i := range pay.RNGPos {
				if gotPay.RNGPos[i] != pay.RNGPos[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, testutil.QuickN(t, seed, 60)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRoundTripDeltaRuns: the same identity for delta payloads, with
// run boundaries derived from the generated vector.
func TestRoundTripDeltaRuns(t *testing.T) {
	prop := func(a, b []census.State, round uint16) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		base, cur := a[:n], b[:n]
		meta := checkpoint.Meta{
			Kind: checkpoint.KindDelta, Round: int(round) + 1, Nodes: n,
			BaseRound: int(round),
		}
		var pay checkpoint.Payload[census.State]
		for lo := 0; lo < n; lo += 64 {
			hi := lo + 64
			if hi > n {
				hi = n
			}
			dirty := false
			for i := lo; i < hi; i++ {
				if base[i] != cur[i] {
					dirty = true
					break
				}
			}
			if dirty {
				pay.Runs = append(pay.Runs, checkpoint.Run[census.State]{Lo: lo, States: cur[lo:hi]})
			}
		}
		data, err := checkpoint.Encode(meta, pay)
		if err != nil {
			return false
		}
		_, gotPay, err := checkpoint.Decode[census.State](data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		patched := append([]census.State(nil), base...)
		for _, run := range gotPay.Runs {
			copy(patched[run.Lo:], run.States)
		}
		for i := range cur {
			if patched[i] != cur[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, testutil.QuickN(t, 33, 40)); err != nil {
		t.Fatal(err)
	}
}
