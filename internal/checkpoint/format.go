// Package checkpoint provides crash-safe snapshots of running FSSGA
// networks. The paper's finite-state guarantee (Section 2; mechanically
// enforced by fssga-vet's finstate analyzer) makes this cheap: a
// network's entire configuration is its per-node finite states plus the
// positions of its per-node random streams, so a checkpoint is a small
// deterministic artifact — states, stream draw counts, the round
// counter, and a content hash of the CSR topology to pin what the
// states are states *of*. Restoring one resumes the run bit-identically
// to an uninterrupted execution (asserted against chaos replay digests
// across the serial, parallel and frontier engines).
//
// The package has three layers:
//
//   - format.go: the versioned, checksummed binary envelope
//     (Encode/Decode/PeekMeta/Verify);
//   - store.go + fs.go: atomic write-ahead commit of envelopes onto an
//     FS abstraction, with recovery rules proven under fault injection
//     (faultfs.go) — an interrupted write is rolled back silently, a
//     corrupted *committed* checkpoint fails loudly, never silently;
//   - manager.go: ties a live fssga.Network to a Store, adding delta
//     (changed-shard-only) checkpoints and chain restore.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/trace"
)

// Envelope layout (all integers big-endian):
//
//	offset 0:  magic "FSSGACKP" (8 bytes)
//	offset 8:  format version (uint16)
//	offset 10: meta length M (uint32)
//	offset 14: gob(Meta), M bytes
//	offset 14+M: gob(Payload[S]) until len-8
//	last 8:    FNV-1a 64 checksum of every preceding byte
const (
	Magic      = "FSSGACKP"
	Version    = 1
	headerSize = len(Magic) + 2 + 4
	tailSize   = 8
)

// Checkpoint kinds.
const (
	KindFull  = "full"  // complete state vector
	KindDelta = "delta" // changed shards relative to BaseRound
)

// Structured decode failures. Every malformed input maps onto one of
// these (wrapped with detail); decode never panics, which
// FuzzCheckpointDecode enforces over a corrupt-bytes corpus.
var (
	// ErrTruncated: the data ends before the envelope structure does.
	ErrTruncated = errors.New("checkpoint: truncated envelope")
	// ErrFormat: bad magic, unsupported version, or undecodable content.
	ErrFormat = errors.New("checkpoint: malformed envelope")
	// ErrChecksum: the envelope is structurally complete but its
	// checksum does not match — the bytes were corrupted after writing.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
)

// Meta is the payload-independent description of one checkpoint. It is
// decodable without knowing the state type (PeekMeta), so tooling can
// inspect checkpoints generically.
type Meta struct {
	Kind      string // KindFull or KindDelta
	Round     int    // network round counter at capture
	Nodes     int    // node capacity of the state vector
	Seed      int64  // master seed of the network's RNG streams
	TopoHash  uint64 // graph.CSR.ContentHash of the topology at capture
	BaseRound int    // delta: round of the checkpoint this one patches; -1 for full

	// Application context, interoperable with trace.RunLog artifacts:
	// enough to rebuild the topology and fast-forward a fault injector
	// before restoring states.
	Target        string          // automaton/target name, informational
	Workers       int             // worker count of the producing run
	Graph         trace.GraphSpec // topology recipe (graph.Build args)
	FaultsApplied int             // fault events applied before capture
}

// Run is one contiguous span of node states in a delta payload.
type Run[S any] struct {
	Lo     int
	States []S
}

// Payload carries the state data of one checkpoint: States for full
// checkpoints, Runs for deltas. RNGPos holds the per-node stream draw
// counts; nil means no stream had ever been drawn from.
type Payload[S any] struct {
	States []S
	Runs   []Run[S]
	RNGPos []uint64
}

// Encode serializes one checkpoint into a self-verifying envelope.
func Encode[S any](meta Meta, pay Payload[S]) ([]byte, error) {
	var mb bytes.Buffer
	if err := gob.NewEncoder(&mb).Encode(&meta); err != nil {
		return nil, fmt.Errorf("checkpoint: encode meta: %w", err)
	}
	buf := bytes.NewBuffer(make([]byte, 0, headerSize+mb.Len()))
	buf.WriteString(Magic)
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:2], Version)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(mb.Len()))
	buf.Write(hdr[:])
	buf.Write(mb.Bytes())
	if err := gob.NewEncoder(buf).Encode(&pay); err != nil {
		return nil, fmt.Errorf("checkpoint: encode payload: %w", err)
	}
	sum := fnv.New64a()
	sum.Write(buf.Bytes())
	var tail [tailSize]byte
	binary.BigEndian.PutUint64(tail[:], sum.Sum64())
	buf.Write(tail[:])
	return buf.Bytes(), nil
}

// Verify checks the envelope frame — magic, version, structural
// lengths, checksum — without decoding the payload (and therefore
// without knowing the state type). A nil return guarantees the bytes
// are exactly the bytes some Encode produced.
func Verify(data []byte) error {
	if len(data) < headerSize+tailSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.BigEndian.Uint16(data[8:10]); v != Version {
		return fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	metaLen := int64(binary.BigEndian.Uint32(data[10:14]))
	if int64(headerSize)+metaLen > int64(len(data)-tailSize) {
		return fmt.Errorf("%w: meta length %d exceeds envelope", ErrTruncated, metaLen)
	}
	want := binary.BigEndian.Uint64(data[len(data)-tailSize:])
	sum := fnv.New64a()
	sum.Write(data[:len(data)-tailSize])
	if sum.Sum64() != want {
		return fmt.Errorf("%w: want %016x, got %016x", ErrChecksum, want, sum.Sum64())
	}
	return nil
}

// PeekMeta verifies the envelope and decodes only its Meta block.
func PeekMeta(data []byte) (Meta, error) {
	var meta Meta
	if err := Verify(data); err != nil {
		return meta, err
	}
	metaLen := int(binary.BigEndian.Uint32(data[10:14]))
	if err := gobDecode(data[headerSize:headerSize+metaLen], &meta); err != nil {
		return Meta{}, fmt.Errorf("%w: meta: %v", ErrFormat, err)
	}
	if err := meta.validate(); err != nil {
		return Meta{}, err
	}
	return meta, nil
}

// Decode verifies the envelope and decodes both blocks.
func Decode[S any](data []byte) (Meta, Payload[S], error) {
	var pay Payload[S]
	meta, err := PeekMeta(data)
	if err != nil {
		return Meta{}, pay, err
	}
	metaLen := int(binary.BigEndian.Uint32(data[10:14]))
	body := data[headerSize+metaLen : len(data)-tailSize]
	if err := gobDecode(body, &pay); err != nil {
		return Meta{}, Payload[S]{}, fmt.Errorf("%w: payload: %v", ErrFormat, err)
	}
	if err := pay.validate(meta); err != nil {
		return Meta{}, Payload[S]{}, err
	}
	return meta, pay, nil
}

// gobDecode decodes strictly — trailing garbage after the value is an
// error — and converts the (never expected, but fuzz-adjacent) case of
// a decoder panic into an error.
func gobDecode(data []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decoder panic: %v", r)
		}
	}()
	r := bytes.NewReader(data)
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("%d trailing bytes", r.Len())
	}
	return nil
}

// validate rejects metas whose fields are structurally impossible, so
// downstream code can trust them without re-checking.
func (m Meta) validate() error {
	switch {
	case m.Kind != KindFull && m.Kind != KindDelta:
		return fmt.Errorf("%w: unknown kind %q", ErrFormat, m.Kind)
	case m.Round < 0 || m.Nodes < 0 || m.FaultsApplied < 0:
		return fmt.Errorf("%w: negative counter in meta", ErrFormat)
	case m.Kind == KindFull && m.BaseRound != -1:
		return fmt.Errorf("%w: full checkpoint with base round %d", ErrFormat, m.BaseRound)
	case m.Kind == KindDelta && (m.BaseRound < 0 || m.BaseRound >= m.Round):
		return fmt.Errorf("%w: delta of round %d based on round %d", ErrFormat, m.Round, m.BaseRound)
	}
	return nil
}

// validate checks the payload's shape against its meta.
func (p Payload[S]) validate(m Meta) error {
	if p.RNGPos != nil && len(p.RNGPos) != m.Nodes {
		return fmt.Errorf("%w: %d RNG positions for %d nodes", ErrFormat, len(p.RNGPos), m.Nodes)
	}
	switch m.Kind {
	case KindFull:
		if len(p.Runs) != 0 {
			return fmt.Errorf("%w: full checkpoint carries delta runs", ErrFormat)
		}
		if len(p.States) != m.Nodes {
			return fmt.Errorf("%w: %d states for %d nodes", ErrFormat, len(p.States), m.Nodes)
		}
	case KindDelta:
		if p.States != nil {
			return fmt.Errorf("%w: delta checkpoint carries a full state vector", ErrFormat)
		}
		prev := 0
		for i, r := range p.Runs {
			if r.Lo < prev || len(r.States) == 0 || r.Lo+len(r.States) > m.Nodes {
				return fmt.Errorf("%w: delta run %d out of bounds or order", ErrFormat, i)
			}
			prev = r.Lo + len(r.States)
		}
	}
	return nil
}
