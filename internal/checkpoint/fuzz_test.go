package checkpoint

import (
	"testing"

	"repro/internal/trace"
)

// FuzzCheckpointDecode: Decode/PeekMeta/Verify never panic, whatever
// the bytes — every failure mode is a structured error. The seed corpus
// covers the interesting corruption families (valid envelopes of both
// kinds, truncations at structural boundaries, bit flips in each
// region, length-field lies); the fuzzer mutates from there.
func FuzzCheckpointDecode(f *testing.F) {
	full, err := Encode(Meta{
		Kind: KindFull, Round: 9, Nodes: 4, Seed: 3, TopoHash: 0xabc, BaseRound: -1,
		Target: "census", Graph: trace.GraphSpec{Gen: "cycle", N: 4, Seed: 1},
	}, Payload[int]{States: []int{1, 0, 1, 1}, RNGPos: []uint64{2, 0, 5, 0}})
	if err != nil {
		f.Fatal(err)
	}
	delta, err := Encode(Meta{
		Kind: KindDelta, Round: 10, Nodes: 4, BaseRound: 9,
	}, Payload[int]{Runs: []Run[int]{{Lo: 0, States: []int{0, 1}}}})
	if err != nil {
		f.Fatal(err)
	}

	f.Add(full)
	f.Add(delta)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(full[:headerSize])                // header only
	f.Add(full[:len(full)/2])               // torn tail
	f.Add(full[:len(full)-tailSize])        // checksum sheared off
	f.Add(append([]byte(nil), full[8:]...)) // magic sheared off

	corrupt := func(src []byte, off int, bit byte) []byte {
		c := append([]byte(nil), src...)
		c[off%len(c)] ^= 1 << (bit % 8)
		return c
	}
	f.Add(corrupt(full, 9, 0))            // version
	f.Add(corrupt(full, 12, 7))           // meta length high bit
	f.Add(corrupt(full, 20, 3))           // inside gob meta
	f.Add(corrupt(full, len(full)-20, 1)) // inside gob payload
	f.Add(corrupt(full, len(full)-1, 5))  // checksum
	f.Add(corrupt(delta, 30, 2))

	// A resealed envelope whose meta length points past the end.
	lie := append([]byte(nil), full...)
	lie[10], lie[11], lie[12], lie[13] = 0x7f, 0xff, 0xff, 0xff
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Any of these may error; none may panic.
		_ = Verify(data)
		if _, err := PeekMeta(data); err == nil {
			// A clean peek implies a verified envelope.
			if Verify(data) != nil {
				t.Fatal("PeekMeta accepted what Verify rejects")
			}
		}
		meta, pay, err := Decode[int](data)
		if err == nil {
			// Decoded checkpoints are internally consistent.
			if meta.Kind == KindFull && len(pay.States) != meta.Nodes {
				t.Fatalf("inconsistent decode: %d states for %d nodes", len(pay.States), meta.Nodes)
			}
			if pay.RNGPos != nil && len(pay.RNGPos) != meta.Nodes {
				t.Fatal("inconsistent RNG vector decoded")
			}
		}
	})
}
