package checkpoint

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func envelope(t *testing.T, round int, states ...int) []byte {
	t.Helper()
	meta := fullMeta(len(states))
	meta.Round = round
	data, err := Encode(meta, Payload[int]{States: states})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStoreWriteLatest(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs, 0)
	for r := 1; r <= 3; r++ {
		if err := st.Write(r*10, envelope(t, r*10, r, r, r)); err != nil {
			t.Fatal(err)
		}
	}
	round, data, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if round != 30 {
		t.Fatalf("latest round = %d", round)
	}
	if !reflect.DeepEqual(data, envelope(t, 30, 3, 3, 3)) {
		t.Fatal("latest data mismatch")
	}
	rounds, err := st.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{10, 20, 30}) {
		t.Fatalf("rounds = %v", rounds)
	}
	// No stray protocol files after a clean commit.
	names, _ := fs.List()
	if len(names) != 3 {
		t.Fatalf("leftover files: %v", names)
	}
}

func TestStoreEmpty(t *testing.T) {
	st := NewStore(NewMemFS(), 0)
	if _, _, err := st.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: %v", err)
	}
}

func TestStoreRetention(t *testing.T) {
	st := NewStore(NewMemFS(), 2)
	for r := 1; r <= 5; r++ {
		if err := st.Write(r, envelope(t, r, r)); err != nil {
			t.Fatal(err)
		}
	}
	rounds, err := st.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{4, 5}) {
		t.Fatalf("retained %v, want [4 5]", rounds)
	}
}

// TestStoreRecoveryRules drives each distinct crash landing by hand and
// checks the documented recovery outcome.
func TestStoreRecoveryRules(t *testing.T) {
	good := envelope(t, 1, 7)
	newer := envelope(t, 2, 8)

	t.Run("intent alone rolls back", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		fs.WriteFile(intentName(2), []byte("x"))
		round, data, err := st.Latest()
		if err != nil || round != 1 {
			t.Fatalf("round=%d err=%v", round, err)
		}
		if !reflect.DeepEqual(data, good) {
			t.Fatal("data mismatch")
		}
		if names, _ := fs.List(); len(names) != 1 {
			t.Fatalf("intent not swept: %v", names)
		}
	})

	t.Run("intent with torn final rolls back silently", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		fs.WriteFile(intentName(2), []byte("x"))
		fs.WriteFile(finalName(2), newer[:len(newer)/2]) // torn
		round, _, err := st.Latest()
		if err != nil || round != 1 {
			t.Fatalf("round=%d err=%v", round, err)
		}
	})

	t.Run("intent with valid final completes the commit", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		fs.WriteFile(intentName(2), []byte("x"))
		fs.WriteFile(finalName(2), newer) // crash fell between rename and intent removal
		round, data, err := st.Latest()
		if err != nil || round != 2 {
			t.Fatalf("round=%d err=%v", round, err)
		}
		if !reflect.DeepEqual(data, newer) {
			t.Fatal("data mismatch")
		}
	})

	t.Run("corrupt committed file fails loudly", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		if err := fs.Corrupt(finalName(1), len(good)/2, 3); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Latest(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("want loud ErrChecksum, got %v", err)
		}
	})

	t.Run("truncated committed file fails loudly", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		if err := fs.Truncate(finalName(1), 5); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Latest(); err == nil {
			t.Fatal("truncated committed file loaded silently")
		}
	})

	t.Run("stray tmp is swept", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		fs.WriteFile(tmpName(2), newer)
		if _, _, err := st.Latest(); err != nil {
			t.Fatal(err)
		}
		if names, _ := fs.List(); len(names) != 1 {
			t.Fatalf("tmp not swept: %v", names)
		}
	})

	t.Run("foreign files ignored", func(t *testing.T) {
		fs := NewMemFS()
		st := NewStore(fs, 0)
		fs.WriteFile("README.txt", []byte("hi"))
		fs.WriteFile("ckpt-abc.fssga", []byte("junk"))
		if err := st.Write(1, good); err != nil {
			t.Fatal(err)
		}
		round, _, err := st.Latest()
		if err != nil || round != 1 {
			t.Fatalf("round=%d err=%v", round, err)
		}
	})
}

// TestStoreCrashSweep is the store-level crash-at-every-unit sweep:
// for every mutation unit of a three-checkpoint workload, crash there,
// recover, and require the survivor to be exactly the last checkpoint
// whose Write returned nil (or, during an interrupted commit, either
// side of its commit point) — never a corrupt load.
func TestStoreCrashSweep(t *testing.T) {
	workload := func(st *Store) (acked []int) {
		for r := 1; r <= 3; r++ {
			if err := st.Write(r, envelope(t, r, r, r)); err == nil {
				acked = append(acked, r)
			}
		}
		return acked
	}

	// Measure the sweep space on an uncrashed run.
	probe := NewFaultFS(NewMemFS())
	workload(NewStore(probe, 0))
	units := probe.Units()
	if units == 0 {
		t.Fatal("workload consumed no units")
	}

	for k := int64(0); k < units; k++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem)
		ffs.CrashAtUnit(k)
		acked := workload(NewStore(ffs, 0))

		// "Reboot": recovery runs against the surviving bytes.
		st := NewStore(mem, 0)
		round, data, err := st.Latest()
		switch {
		case err == nil:
			meta, pay, derr := Decode[int](data)
			if derr != nil {
				t.Fatalf("unit %d: corrupt load: %v", k, derr)
			}
			if meta.Round != round || !reflect.DeepEqual(pay.States, []int{round, round}) {
				t.Fatalf("unit %d: silent corruption: %+v", k, meta)
			}
			// The survivor is at least everything acknowledged.
			if len(acked) > 0 && round < acked[len(acked)-1] {
				t.Fatalf("unit %d: acked round %d lost, recovered %d", k, acked[len(acked)-1], round)
			}
		case errors.Is(err, ErrNoCheckpoint):
			if len(acked) > 0 {
				t.Fatalf("unit %d: acked rounds %v lost entirely", k, acked)
			}
		default:
			t.Fatalf("unit %d: recovery failed loudly on an interrupted write: %v", k, err)
		}
	}
}

// TestStoreShortRead: a short read of a committed checkpoint surfaces
// as a truncation error, not a silent partial load.
func TestStoreShortRead(t *testing.T) {
	mem := NewMemFS()
	st := NewStore(mem, 0)
	if err := st.Write(1, envelope(t, 1, 9)); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(mem)
	ffs.ShortReads(1)
	if _, err := NewStore(ffs, 0).Read(1); err == nil {
		t.Fatal("short read loaded silently")
	}
}

func TestParseName(t *testing.T) {
	for _, name := range []string{"ckpt-000000000007.fssga", "ckpt-000000000007.fssga.tmp", "ckpt-000000000007.intent"} {
		round, _, ok := parseName(name)
		if !ok || round != 7 {
			t.Fatalf("parseName(%q) = %d, %v", name, round, ok)
		}
	}
	for _, name := range []string{"other.txt", "ckpt-7.fssga", "ckpt-00000000000x.fssga", fmt.Sprintf("ckpt-%012d.bak", 3)} {
		if _, _, ok := parseName(name); ok {
			t.Fatalf("parseName(%q) accepted", name)
		}
	}
}
