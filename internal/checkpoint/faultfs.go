package checkpoint

import (
	"errors"
	"fmt"
	"sync"
)

// FaultFS wraps an FS with deterministic fault injection. Every
// mutating operation is divided into crash units — points at which a
// process death leaves a distinct on-disk state:
//
//	WriteFile: 3 units — crash before (nothing written), crash mid
//	           (a torn prefix of half the data), crash after (full
//	           content on disk but the caller never saw success);
//	Rename:    1 unit — crash before the atomic swap;
//	Remove:    1 unit — crash before the removal.
//
// A sweep runs the same workload once per unit index k, arming the
// FaultFS to crash at unit k; after the crash every operation fails
// with ErrCrashed, modeling a dead process. The surviving inner FS is
// then handed to recovery, which must either restore the last committed
// checkpoint exactly or fail loudly — the crash sweep in internal/chaos
// asserts this for every k.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	units   int64 // mutation units consumed so far
	crashAt int64 // crash when units reaches this; <0 = never
	crashed bool

	// shortReads, while positive, truncates each ReadFile result to
	// half its length, consuming one shortRead per read.
	shortReads int
}

// ErrCrashed marks operations refused because the simulated process
// already died.
var ErrCrashed = errors.New("checkpoint: simulated crash")

// NewFaultFS wraps inner with the crash point disarmed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, crashAt: -1}
}

// CrashAtUnit arms the fault: the n-th mutation unit (0-based) from now
// dies mid-operation. Negative disarms.
func (f *FaultFS) CrashAtUnit(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		f.crashAt = -1
	} else {
		f.crashAt = f.units + n
	}
}

// Units reports the mutation units consumed so far — running a workload
// once uncrashed measures the sweep space.
func (f *FaultFS) Units() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.units
}

// Crashed reports whether the armed crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// ShortReads arms the next n ReadFile calls to return half the file.
func (f *FaultFS) ShortReads(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortReads = n
}

// tick consumes one mutation unit and reports whether the crash fires
// on it. Once crashed, every subsequent call fires immediately.
func (f *FaultFS) tick() bool {
	if f.crashed {
		return true
	}
	hit := f.crashAt >= 0 && f.units == f.crashAt
	f.units++
	if hit {
		f.crashed = true
	}
	return hit
}

func (f *FaultFS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tick() { // unit 1: before any byte lands
		return fmt.Errorf("checkpoint: write %s: %w", name, ErrCrashed)
	}
	if f.tick() { // unit 2: torn mid-write
		if err := f.inner.WriteFile(name, data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("checkpoint: torn write %s: %w", name, ErrCrashed)
	}
	if f.tick() { // unit 3: data durable, success never observed
		if err := f.inner.WriteFile(name, data); err != nil {
			return err
		}
		return fmt.Errorf("checkpoint: write %s committed but crashed: %w", name, ErrCrashed)
	}
	return f.inner.WriteFile(name, data)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tick() {
		return fmt.Errorf("checkpoint: rename %s: %w", oldname, ErrCrashed)
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tick() {
		return fmt.Errorf("checkpoint: remove %s: %w", name, ErrCrashed)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, fmt.Errorf("checkpoint: read %s: %w", name, ErrCrashed)
	}
	short := f.shortReads > 0
	if short {
		f.shortReads--
	}
	f.mu.Unlock()
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if short {
		return data[:len(data)/2], nil
	}
	return data, nil
}

func (f *FaultFS) List() ([]string, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, fmt.Errorf("checkpoint: list: %w", ErrCrashed)
	}
	f.mu.Unlock()
	return f.inner.List()
}
