package checkpoint

import "testing"

// TestDiffRunsNoChurnZeroAllocs is the dynamic half of the hotalloc
// cross-check for diffRuns (the static half — verdict "audited" — is
// asserted by internal/fssga's hotpath harness): the //fssga:alloc
// audits on its appends claim the only allocation is the delta payload
// itself, proportional to churn, so with zero churn the scan must
// allocate nothing at all.
func TestDiffRunsNoChurnZeroAllocs(t *testing.T) {
	base := make([]int, 4*deltaChunk)
	cur := make([]int, 4*deltaChunk)
	if allocs := testing.AllocsPerRun(20, func() { diffRuns(base, cur) }); allocs != 0 {
		t.Fatalf("diffRuns allocates %.1f objects/op on identical inputs, want 0 (payload appends should be the only allocation)", allocs)
	}
}

// TestDiffRunsChurnProportional pins the audited claim from the other
// side: with churn, diffRuns allocates only the run payloads — one
// backing array per dirty region (plus growth), never per chunk scanned.
func TestDiffRunsChurnProportional(t *testing.T) {
	base := make([]int, 64*deltaChunk)
	cur := make([]int, 64*deltaChunk)
	cur[5*deltaChunk] = 1  // one dirty chunk
	cur[40*deltaChunk] = 1 // a second, non-adjacent dirty region
	allocs := testing.AllocsPerRun(20, func() { diffRuns(base, cur) })
	// 2 runs: the runs slice (with growth ≤ 2 reallocs) + 2 payload
	// arrays. Anything near the 64-chunk scan count means the scan loop
	// itself allocates.
	if allocs > 8 {
		t.Fatalf("diffRuns allocates %.1f objects/op for 2 dirty regions, want O(regions) not O(chunks)", allocs)
	}
}
