package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the small flat-namespace filesystem surface the Store commits
// through. Keeping it an interface is what makes the recovery protocol
// testable: faultfs.go wraps any FS with torn writes, short reads and
// crash-at-every-boundary sweeps, and the store's invariants are proven
// against those, not against a well-behaved OS.
type FS interface {
	// WriteFile atomicity is NOT assumed — the store's intent protocol
	// is designed around torn writes.
	WriteFile(name string, data []byte) error
	ReadFile(name string) ([]byte, error)
	// Rename must be atomic: after a crash the name refers to either
	// the old or the new content, never a mixture. Both real backends
	// (POSIX rename, the in-memory map) provide this.
	Rename(oldname, newname string) error
	// Remove of a missing file is not an error.
	Remove(name string) error
	List() ([]string, error)
}

// DirFS is the production FS: a flat directory on the OS filesystem.
type DirFS struct{ Dir string }

// NewDirFS creates the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &DirFS{Dir: dir}, nil
}

func (d *DirFS) path(name string) string { return filepath.Join(d.Dir, name) }

func (d *DirFS) WriteFile(name string, data []byte) error {
	f, err := os.OpenFile(d.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// Sync before close so the commit rename never outruns the data:
	// the crash model behind the recovery rules assumes write-then-
	// rename ordering.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *DirFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(d.path(name)) }

func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d *DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MemFS is an in-memory FS for tests and crash sweeps. All methods are
// safe for concurrent use; Rename is atomic under the mutex, matching
// the FS contract.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

func (m *MemFS) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("checkpoint: %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Corrupt flips one bit of a stored file — the corruption primitive the
// bit-flip sweep uses to prove checksums catch every single-bit error.
func (m *MemFS) Corrupt(name string, byteOff int, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return fmt.Errorf("checkpoint: %s: %w", name, os.ErrNotExist)
	}
	if byteOff < 0 || byteOff >= len(data) {
		return fmt.Errorf("checkpoint: corrupt offset %d outside %d-byte file", byteOff, len(data))
	}
	data[byteOff] ^= 1 << (bit % 8)
	return nil
}

// Truncate cuts a stored file to n bytes (torn-tail simulation).
func (m *MemFS) Truncate(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return fmt.Errorf("checkpoint: %s: %w", name, os.ErrNotExist)
	}
	if n < 0 || n > len(data) {
		return fmt.Errorf("checkpoint: truncate %d outside %d-byte file", n, len(data))
	}
	m.files[name] = data[:n]
	return nil
}

// Size returns the byte length of a stored file.
func (m *MemFS) Size(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("checkpoint: %s: %w", name, os.ErrNotExist)
	}
	return len(data), nil
}
