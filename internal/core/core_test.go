package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestRunCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedGNP(100, 0.05, rng)
	res, err := RunCensus(g, 1)
	if err != nil || !res.OK {
		t.Fatalf("census: %+v err=%v", res, err)
	}
	if res.Algorithm != "census" || !strings.Contains(res.Detail, "estimate") {
		t.Fatalf("bad result record: %+v", res)
	}
}

func TestRunShortestPaths(t *testing.T) {
	g := graph.Grid(6, 6)
	res, err := RunShortestPaths(g, []int{0, 35}, 1)
	if err != nil || !res.OK {
		t.Fatalf("shortest paths: %+v err=%v", res, err)
	}
}

func TestRunShortestPathsBadTarget(t *testing.T) {
	g := graph.Path(4)
	g.RemoveNode(2)
	if _, err := RunShortestPaths(g, []int{2}, 1); err == nil {
		t.Fatal("dead target accepted")
	}
}

func TestRunTwoColorBothVerdicts(t *testing.T) {
	even, err := RunTwoColor(graph.Cycle(8), 1)
	if err != nil || !even.OK {
		t.Fatalf("even cycle: %+v", even)
	}
	odd, err := RunTwoColor(graph.Cycle(9), 1)
	if err != nil || !odd.OK {
		t.Fatalf("odd cycle: %+v", odd)
	}
}

func TestRunBFS(t *testing.T) {
	g := graph.Path(12)
	res, err := RunBFS(g, 0, 11, 1)
	if err != nil || !res.OK {
		t.Fatalf("bfs: %+v err=%v", res, err)
	}
	g.RemoveEdge(5, 6)
	res, err = RunBFS(g, 0, 11, 1)
	if err != nil || !res.OK {
		t.Fatalf("bfs unreachable verdict: %+v err=%v", res, err)
	}
}

func TestRunBridges(t *testing.T) {
	res, err := RunBridges(graph.Barbell(4, 1), 1)
	if err != nil || !res.OK {
		t.Fatalf("bridges: %+v err=%v", res, err)
	}
}

func TestRunTraversal(t *testing.T) {
	res, err := RunTraversal(graph.Grid(3, 3), 1)
	if err != nil || !res.OK {
		t.Fatalf("traversal: %+v err=%v", res, err)
	}
}

func TestRunElection(t *testing.T) {
	res, err := RunElection(graph.Cycle(8), 1)
	if err != nil || !res.OK {
		t.Fatalf("election: %+v err=%v", res, err)
	}
	if !strings.Contains(res.Detail, "leader") {
		t.Fatalf("detail = %q", res.Detail)
	}
}

// The facade works on a network that has already suffered faults.
func TestFacadeAfterFaults(t *testing.T) {
	g := graph.Torus(4, 4)
	g.RemoveNode(5)
	g.RemoveEdge(0, 1)
	for _, run := range []func() (Result, error){
		func() (Result, error) { return RunCensus(g.Clone(), 3) },
		func() (Result, error) { return RunShortestPaths(g.Clone(), []int{0}, 3) },
		func() (Result, error) { return RunTwoColor(g.Clone(), 3) },
	} {
		res, err := run()
		if err != nil || !res.OK {
			t.Fatalf("faulted facade run: %+v err=%v", res, err)
		}
	}
}
