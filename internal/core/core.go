// Package core is the library's front door: it ties the FSSGA model
// (internal/fssga, internal/sm) and the paper's algorithm suite
// (internal/algo/...) into one documented surface, so a caller can build a
// topology, run any of the Pritchard–Vempala (SPAA 2006) algorithms on it,
// and inspect the result without importing each subsystem individually.
//
// The model itself: every node of an undirected graph runs one copy of the
// same finite automaton and reads its neighbours only as a multiset
// (fssga.View), which mechanically enforces the paper's symmetry
// requirements S0–S2. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced claims.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/algo/bfs"
	"repro/internal/algo/bridges"
	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/traversal"
	"repro/internal/algo/twocolor"
	"repro/internal/graph"
)

// Graph re-exports the topology type used throughout the library.
type Graph = graph.Graph

// Result is the uniform outcome record returned by the Run* helpers.
type Result struct {
	// Algorithm names which algorithm ran.
	Algorithm string
	// Rounds is the synchronous rounds (or charged time) consumed.
	Rounds int
	// OK is the algorithm's own success verdict.
	OK bool
	// Detail is a one-line human-readable summary.
	Detail string
}

// RunCensus estimates the node count from every node's perspective
// (Section 1) and reports the estimate at the smallest live node.
func RunCensus(g *Graph, seed int64) (Result, error) {
	cfg := census.Config{Bits: 14, Sketches: 8, Seed: seed}
	res, err := census.Run(g, cfg, 20*g.NumNodes()+40)
	if err != nil {
		return Result{}, err
	}
	v := 0
	for v < g.Cap() && !g.Alive(v) {
		v++
	}
	est := 0.0
	if v < g.Cap() {
		est = res.Estimates[v]
	}
	return Result{
		Algorithm: "census",
		Rounds:    res.Rounds,
		OK:        res.Converged,
		Detail:    fmt.Sprintf("estimate %.1f for %d live nodes", est, g.NumNodes()),
	}, nil
}

// RunShortestPaths stabilizes distance labels toward the target set
// (Section 2.2) and verifies them against the BFS oracle.
func RunShortestPaths(g *Graph, targets []int, seed int64) (Result, error) {
	res, err := shortestpath.Run(g, targets, 20*g.NumNodes()+40, seed)
	if err != nil {
		return Result{}, err
	}
	want := g.BFSDistances(targets...)
	exact := true
	for v := 0; v < g.Cap(); v++ {
		if !g.Alive(v) {
			continue
		}
		w := want[v]
		if w == graph.Unreachable {
			w = g.NumNodes()
		}
		if res.Labels[v] != w {
			exact = false
		}
	}
	return Result{
		Algorithm: "shortest-paths",
		Rounds:    res.Rounds,
		OK:        res.Converged && exact,
		Detail:    fmt.Sprintf("labels exact=%v for %d targets", exact, len(targets)),
	}, nil
}

// RunTwoColor decides bipartiteness (Section 4.1).
func RunTwoColor(g *Graph, seed int64) (Result, error) {
	res := twocolor.Run(g, firstLive(g), 40*g.NumNodes()+40, seed)
	return Result{
		Algorithm: "two-colour",
		Rounds:    res.Rounds,
		OK:        res.Converged && res.Bipartite == g.IsBipartite(),
		Detail:    fmt.Sprintf("bipartite=%v (oracle %v)", res.Bipartite, g.IsBipartite()),
	}, nil
}

// RunBFS searches from origin for target (Section 4.3).
func RunBFS(g *Graph, origin, target int, seed int64) (Result, error) {
	res, err := bfs.Run(g, origin, []int{target}, 40*g.NumNodes()+40, seed)
	if err != nil {
		return Result{}, err
	}
	reachable := g.BFSDistances(origin)[target] != graph.Unreachable
	return Result{
		Algorithm: "bfs",
		Rounds:    res.Rounds,
		OK:        res.Converged && res.Found == reachable,
		Detail:    fmt.Sprintf("found=%v (reachable %v)", res.Found, reachable),
	}, nil
}

// RunBridges identifies the bridge set by random walk (Section 2.1).
func RunBridges(g *Graph, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	res := bridges.Run(g, firstLive(g), 4, rng)
	return Result{
		Algorithm: "bridges",
		Rounds:    res.Steps,
		OK:        res.TrueSet,
		Detail:    fmt.Sprintf("%d candidate bridges, exact=%v", len(res.Candidates), res.TrueSet),
	}, nil
}

// RunTraversal visits every node with Milgram's arm/hand agent
// (Section 4.5).
func RunTraversal(g *Graph, seed int64) (Result, error) {
	tr, err := traversal.NewMilgram(g, firstLive(g), seed)
	if err != nil {
		return Result{}, err
	}
	rounds, done := tr.Run(40000 * g.NumNodes())
	return Result{
		Algorithm: "milgram-traversal",
		Rounds:    rounds,
		OK:        done && tr.VisitedCount() == g.NumNodes(),
		Detail:    fmt.Sprintf("hand moves %d (2n-2 = %d)", tr.HandMoves, 2*g.NumNodes()-2),
	}, nil
}

// RunElection elects a unique leader (Section 4.7).
func RunElection(g *Graph, seed int64) (Result, error) {
	tr := election.New(g, seed)
	rounds, ok := tr.Run(100000*g.NumNodes(), 3*g.NumNodes()+10)
	leader := -1
	if ls := tr.Leaders(); len(ls) == 1 {
		leader = ls[0]
	}
	return Result{
		Algorithm: "election",
		Rounds:    rounds,
		OK:        ok,
		Detail:    fmt.Sprintf("leader %d after %d phases", leader, tr.Phases),
	}, nil
}

func firstLive(g *Graph) int {
	for v := 0; v < g.Cap(); v++ {
		if g.Alive(v) {
			return v
		}
	}
	return 0
}
