package repro

// Cross-module integration tests: pipelines that exercise several
// subsystems together, the way a downstream user would compose them.

import (
	"math/rand"
	"testing"

	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/traversal"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/sensitivity"
)

// TestPipelineCensusThenElection runs a census to size the network, then
// elects a leader on the same (already-used) topology — two algorithms
// sharing one graph instance sequentially.
func TestPipelineCensusThenElection(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomConnectedGNP(24, 0.15, rng)

	cres, err := core.RunCensus(g, 1)
	if err != nil || !cres.OK {
		t.Fatalf("census: %+v err=%v", cres, err)
	}
	eres, err := core.RunElection(g, 2)
	if err != nil || !eres.OK {
		t.Fatalf("election: %+v err=%v", eres, err)
	}
}

// TestPipelineFaultsAcrossAlgorithms applies one shared fault schedule to
// a census network and a shortest-path network over clones of the same
// topology; both 0-sensitive algorithms must stay correct.
func TestPipelineFaultsAcrossAlgorithms(t *testing.T) {
	base := graph.Torus(5, 5)
	base.Seal()
	sched := faults.Schedule{
		faults.EdgeAt(2, 0, 1),
		faults.NodeAt(4, 12),
		faults.EdgeAt(6, 20, 21),
	}

	// Census under the schedule.
	gC := base.Clone()
	cfg := census.Config{Bits: 14, Sketches: 8, Seed: 3}
	netC, err := census.NewNetwork(gC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inC := faults.NewInjector(sched)
	for r := 1; r <= 10; r++ {
		inC.Advance(gC, r)
		netC.SyncRound()
	}
	netC.RunSyncUntilQuiescent(500)
	est := census.Estimate(netC.State(0), cfg)
	if est < float64(gC.NumNodes())/4 || est > 4*25 {
		t.Fatalf("census estimate %v implausible for %d survivors", est, gC.NumNodes())
	}

	// Shortest paths under the same schedule.
	gS := base.Clone()
	netS, err := shortestpath.NewNetwork(gS, []int{0}, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	inS := faults.NewInjector(sched)
	for r := 1; r <= 10; r++ {
		inS.Advance(gS, r)
		netS.SyncRound()
	}
	if _, ok := netS.RunSyncUntilQuiescent(500); !ok {
		t.Fatal("labels did not restabilize")
	}
	want := gS.BFSDistances(0)
	for v := 0; v < gS.Cap(); v++ {
		if !gS.Alive(v) || want[v] == graph.Unreachable {
			continue
		}
		if netS.State(v).Label != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, netS.State(v).Label, want[v])
		}
	}
}

// TestPipelineTraversalValidatesCensusGroundTruth walks a Milgram agent
// over the graph and cross-checks that the set of visited nodes matches
// the census's notion of the network: every visited node contributed to
// the OR fixed point.
func TestPipelineTraversalValidatesCensusGroundTruth(t *testing.T) {
	g := graph.Grid(4, 4)
	mt, err := traversal.NewMilgram(g.Clone(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := mt.Run(500000); !done {
		t.Fatal("traversal incomplete")
	}
	if mt.VisitedCount() != 16 {
		t.Fatalf("visited %d of 16", mt.VisitedCount())
	}

	res, err := core.RunCensus(g, 5)
	if err != nil || !res.OK {
		t.Fatalf("census on traversed graph: %+v err=%v", res, err)
	}
}

// TestSensitivityHarnessAgreesWithDirectRun cross-checks the sensitivity
// probe abstraction against a direct algorithm invocation on the same
// faulted topology.
func TestSensitivityHarnessAgreesWithDirectRun(t *testing.T) {
	probe := sensitivity.ShortestPathProbe(func(g *graph.Graph) []int { return []int{0} })
	g := graph.Grid(5, 5)
	g.Seal()
	sched := faults.Schedule{faults.NodeAt(3, 13)}
	rep := probe.Run(g.Clone(), sched, 7)
	if !rep.Correct || rep.Critical {
		t.Fatalf("probe: %+v", rep)
	}

	// Direct run on the post-fault graph gives the same labels.
	gDirect := g.Clone()
	gDirect.RemoveNode(13)
	res, err := core.RunShortestPaths(gDirect, []int{0}, 7)
	if err != nil || !res.OK {
		t.Fatalf("direct: %+v err=%v", res, err)
	}
}

// TestElectionSurvivesPreElectionFaults elects on a graph that was
// damaged before the algorithm started — the common deployment reality.
func TestElectionSurvivesPreElectionFaults(t *testing.T) {
	g := graph.Torus(4, 4)
	g.RemoveNode(5)
	g.RemoveEdge(0, 1)
	if !g.Connected() {
		t.Fatal("setup: graph disconnected")
	}
	tr := election.New(g, 9)
	if _, ok := tr.Run(100000*15, 3*15+10); !ok {
		t.Fatalf("no leader on pre-damaged graph (remaining=%d phases=%d)", tr.Remaining(), tr.Phases)
	}
}
