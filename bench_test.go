// Package repro's root benchmark harness: one testing.B benchmark per
// experiment table (E1–E13, see DESIGN.md's per-experiment index), plus
// the ablation benches DESIGN.md calls out (serial vs goroutine-parallel
// rounds; capped vs raw neighbourhood observation). Absolute timings are
// machine-dependent; the experiment *tables* (shape, fits, verdicts) are
// produced by cmd/fssga-bench and recorded in EXPERIMENTS.md.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/algo/bfs"
	"repro/internal/algo/bridges"
	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/randomwalk"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/synchronizer"
	"repro/internal/algo/traversal"
	"repro/internal/algo/twocolor"
	"repro/internal/fssga"
	"repro/internal/graph"
	"repro/internal/iwa"
	"repro/internal/sensitivity"
	"repro/internal/sm"
)

// BenchmarkCensus (table E1): full OR-diffusion census on G(n, p).
func BenchmarkCensus(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	base := graph.RandomConnectedGNP(256, 0.02, rng)
	cfg := census.Config{Bits: 14, Sketches: 8, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := base.Clone()
		if _, err := census.Run(g, cfg, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBridges (table E2): random-walk bridge detection to the
// O(c·mn·log n) step budget on a barbell.
func BenchmarkBridges(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		g := graph.Barbell(10, 2)
		if res := bridges.Run(g, 0, 2, rng); len(res.Candidates) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkShortestPath (table E3): distance labels to quiescence on a
// 16x16 grid.
func BenchmarkShortestPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Grid(16, 16)
		if _, err := shortestpath.Run(g, []int{0}, 4096, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoColor (table E4): bipartiteness verdict on an even cycle.
func BenchmarkTwoColor(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Cycle(256)
		if res := twocolor.Run(g, 0, 8192, 1); !res.Bipartite {
			b.Fatal("wrong verdict")
		}
	}
}

// BenchmarkSynchronizer (table E5): 32 fair asynchronous time units of
// the wrapped max automaton on an 8x8 grid.
func BenchmarkSynchronizer(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		g := graph.Grid(8, 8)
		net := fssga.New[synchronizer.State[int]](g,
			synchronizer.Wrapped[int]{Inner: maxAuto{}},
			synchronizer.WrapInit(func(v int) int { return v }), 1)
		tr := synchronizer.NewTracker(net)
		tr.RunUnits(32, rng)
		if !tr.SkewOK() {
			b.Fatal("skew broken")
		}
	}
}

type maxAuto struct{}

func (maxAuto) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	best := self
	view.ForEach(func(s, _ int) {
		if s > best {
			best = s
		}
	})
	return best
}

// BenchmarkBFS (table E6): full out-and-back search on a 60-node path.
func BenchmarkBFS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Path(60)
		res, err := bfs.Run(g, 0, []int{59}, 4096, 1)
		if err != nil || !res.Found {
			b.Fatal("search failed")
		}
	}
}

// BenchmarkRandomWalkMove (table E7): one tournament hand-off at a
// degree-64 node.
func BenchmarkRandomWalkMove(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Star(65)
		tr, err := randomwalk.New(g, 0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := tr.RunMoves(1, 100000); !ok {
			b.Fatal("no move")
		}
	}
}

// BenchmarkMilgram (table E8): full arm/hand traversal of a 6x6 grid.
func BenchmarkMilgram(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Grid(6, 6)
		tr, err := traversal.NewMilgram(g, 0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, done := tr.Run(2000000); !done {
			b.Fatal("traversal incomplete")
		}
	}
}

// BenchmarkGreedyTourist (table E9): full greedy-tourist traversal of an
// 8x8 grid.
func BenchmarkGreedyTourist(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Grid(8, 8)
		tr, err := traversal.NewTourist(g, 0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !tr.Run(100 * 64) {
			b.Fatal("traversal incomplete")
		}
	}
}

// BenchmarkElection (table E10): full leader election on a 16-cycle.
func BenchmarkElection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Cycle(16)
		tr := election.New(g, int64(i))
		if _, ok := tr.Run(2000000, 58); !ok {
			b.Fatal("no leader")
		}
	}
}

// BenchmarkConversions (table E11): the full Theorem 3.7 conversion cycle
// on a random counter program.
func BenchmarkConversions(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	s0 := sm.RandomCounterSequential(2, 3, 3, 2, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt, err := sm.SequentialToModThresh(s0)
		if err != nil {
			b.Fatal(err)
		}
		p, err := sm.ModThreshToParallel(mt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sm.ParallelToSequential(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIWA (table E12): one Θ(m) IWA-agent simulation of an FSSGA
// round.
func BenchmarkIWA(b *testing.B) {
	b.ReportAllocs()
	numQ := 4
	orFn := sm.BitwiseOR(2)
	fs := make([]sm.Func, numQ)
	for q := 0; q < numQ; q++ {
		fs[q] = orSelf{or: orFn, self: q}
	}
	auto, err := fssga.NewDeterministicFormal(numQ, fs)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedGNP(64, 0.1, rng)
	states := make([]int, g.Cap())
	for v := range states {
		states[v] = rng.Intn(numQ)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := iwa.SimulateRound(g, auto, states); err != nil {
			b.Fatal(err)
		}
	}
}

type orSelf struct {
	or   sm.Func
	self int
}

func (o orSelf) Eval(qs []int) int { return o.or.Eval(qs) | o.self }

// BenchmarkSensitivity (table E13): one fault-injected census probe run.
func BenchmarkSensitivity(b *testing.B) {
	b.ReportAllocs()
	probe := sensitivity.CensusProbe(14, 8, 2)
	row := sensitivity.Measure(probe, 1, 24, 0.08, 1)
	if row.Trials != 1 {
		b.Fatal("probe failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sensitivity.Measure(probe, 1, 24, 0.08, int64(i))
	}
}

// BenchmarkSyncRoundWorkers is ablation 2 of DESIGN.md: one synchronous
// round, serial vs goroutine-parallel, which must agree bit-for-bit while
// exposing the parallel speedup on large graphs.
func BenchmarkSyncRoundWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedGNP(4096, 0.002, rng)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			net := fssga.New[int](g.Clone(), maxAuto{}, func(v int) int { return v }, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.SyncRoundParallel(workers)
			}
		})
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// BenchmarkViewObservation is ablation 1 of DESIGN.md: the capped
// (mod-thresh) observation versus a raw full-multiset scan.
func BenchmarkViewObservation(b *testing.B) {
	states := make([]int, 1024)
	for i := range states {
		states[i] = i % 7
	}
	view := fssga.NewView(states)
	b.Run("capped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if view.Count(3, func(s int) bool { return s == 3 }) != 3 {
				b.Fatal("wrong count")
			}
		}
	})
	b.Run("raw-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			view.ForEach(func(s, c int) {
				if s == 3 {
					total += c
				}
			})
			if total == 0 {
				b.Fatal("wrong count")
			}
		}
	})
}

// BenchmarkSemiLattice: one synchronous round of the §5 semi-lattice
// diffusion on a large sparse graph.
func BenchmarkSemiLattice(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedGNP(2048, 0.004, rng)
	net := fssga.New[int](g, fssga.SemiLattice[int]{Join: fssga.MaxJoin},
		func(v int) int { return v }, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SyncRound()
	}
}

// denseMaxAuto is maxAuto with the DenseAutomaton extension: the same
// diffusion step, but views back onto a reusable multiplicity vector.
type denseMaxAuto struct{ k int }

func (d denseMaxAuto) NumStates() int       { return d.k }
func (d denseMaxAuto) StateIndex(s int) int { return s }
func (d denseMaxAuto) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	best := self
	view.ForEach(func(s, _ int) {
		if s > best {
			best = s
		}
	})
	return best
}

// BenchmarkViewDenseVsMap isolates the view-engine cost: identical
// max-diffusion rounds on the same graph, dense multiplicity vector
// versus the map-of-counts fallback (DenseAutomaton methods hidden
// behind StepFunc). The dense path must report 0 allocs/op.
func BenchmarkViewDenseVsMap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedGNP(2048, 0.004, rng)
	const k = 16
	init := func(v int) int { return v % k }
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		net := fssga.New[int](g.Clone(), denseMaxAuto{k}, init, 1)
		net.SyncRound()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRound()
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		net := fssga.New[int](g.Clone(), fssga.StepFunc[int](denseMaxAuto{k}.Step), init, 1)
		net.SyncRound()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRound()
		}
	})
}

// BenchmarkSyncRoundFrontier: steady-state probe rounds on a quiesced
// diffusion — the frontier round only scans change flags, versus a full
// view rebuild per node.
func BenchmarkSyncRoundFrontier(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedGNP(2048, 0.004, rng)
	const k = 16
	init := func(v int) int { return v % k }
	b.Run("frontier", func(b *testing.B) {
		b.ReportAllocs()
		net := fssga.New[int](g.Clone(), denseMaxAuto{k}, init, 1)
		net.RunSyncUntilQuiescent(1 << 14)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRoundFrontier()
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		net := fssga.New[int](g.Clone(), denseMaxAuto{k}, init, 1)
		net.RunSyncUntilQuiescent(1 << 14)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRound()
		}
	})
}
