#!/bin/sh
# Tier-1 verification for the repo (see ROADMAP.md): build, vet, the
# fssga-vet determinism/symmetry analyzers, full tests under the
# coverage ratchet, the race detector over the execution engine and the
# algorithm layer — the packages with goroutine-parallel rounds and the
# serial/parallel determinism invariant — and the chaos and
# model-checker smoke gates.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== fssga-vet (determinism, symmetry, model-contract & hot-path analyzers)"
go run ./cmd/fssga-vet repro/...

echo "== fssga-vet self-check (the analyzers pass their own code)"
go run ./cmd/fssga-vet repro/internal/analysis/... repro/cmd/fssga-vet

echo "== fssga-vet hot-path gate (-json envelope, hotalloc + shardsafe)"
go run ./cmd/fssga-vet -json -analyzers hotalloc,shardsafe repro/... > /dev/null

echo "== fssga-vet concurrency gate (goroleak, chanprotocol, lockorder, atomicmix)"
go run ./cmd/fssga-vet -json -analyzers goroleak,chanprotocol,lockorder,atomicmix repro/... > /dev/null

echo "== fssga-vet -audit (no stale directives, suppression ratchet)"
go run ./cmd/fssga-vet -audit -ratchet scripts/suppression_ratchet.txt repro/... > /dev/null

echo "== go test -cover ./... (coverage ratchet)"
./scripts/coverage.sh

echo "== perf regression gate (gated headline series vs committed BENCH_engine.json)"
go run ./cmd/fssga-bench -perfgate

echo "== aggregation differential suite under race (tree views vs linear scans)"
go test -race -run 'TestAggDifferential' ./internal/fssga/

echo "== go test -race ./internal/fssga/... ./internal/algo/..."
go test -race ./internal/fssga/... ./internal/algo/...

echo "== go test -race ./internal/chaos/... ./internal/faults/..."
go test -race ./internal/chaos/... ./internal/faults/...

echo "== chaos smoke campaign"
go run ./cmd/fssga-chaos -smoke -out "$(mktemp -d)"

echo "== crash-recovery soak (checkpoint durability)"
go run ./cmd/fssga-chaos -crash

echo "== model checker smoke"
go run ./cmd/fssga-mc -smoke -out "$(mktemp -d)"

echo "OK"
