#!/bin/sh
# Tier-1 verification for the repo (see ROADMAP.md): build, vet, the
# fssga-vet determinism/symmetry analyzers, full tests under the
# coverage ratchet, the race detector over the execution engine and the
# algorithm layer — the packages with goroutine-parallel rounds and the
# serial/parallel determinism invariant — and the chaos and
# model-checker smoke gates.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== fssga-vet (determinism, symmetry & model-contract analyzers)"
go run ./cmd/fssga-vet repro/...

echo "== fssga-vet -audit (no stale //fssga:nondet directives)"
go run ./cmd/fssga-vet -audit repro/... > /dev/null

echo "== go test -cover ./... (coverage ratchet)"
./scripts/coverage.sh

echo "== perf regression gate (gated headline series vs committed BENCH_engine.json)"
go run ./cmd/fssga-bench -perfgate

echo "== aggregation differential suite under race (tree views vs linear scans)"
go test -race -run 'TestAggDifferential' ./internal/fssga/

echo "== go test -race ./internal/fssga/... ./internal/algo/..."
go test -race ./internal/fssga/... ./internal/algo/...

echo "== go test -race ./internal/chaos/... ./internal/faults/..."
go test -race ./internal/chaos/... ./internal/faults/...

echo "== chaos smoke campaign"
go run ./cmd/fssga-chaos -smoke -out "$(mktemp -d)"

echo "== crash-recovery soak (checkpoint durability)"
go run ./cmd/fssga-chaos -crash

echo "== model checker smoke"
go run ./cmd/fssga-mc -smoke -out "$(mktemp -d)"

echo "OK"
