#!/bin/sh
# Coverage ratchet: run the full test suite with statement coverage and
# fail if any package listed in scripts/coverage_ratchet.txt reports
# coverage below its checked-in floor, or disappears from the test
# output entirely (e.g. a package rename that silently drops its floor).
set -eu
cd "$(dirname "$0")/.."

ratchet=scripts/coverage_ratchet.txt
out=$(go test -cover ./...)
echo "$out"

echo "$out" | awk -v ratchet="$ratchet" '
BEGIN {
	while ((getline line < ratchet) > 0) {
		if (line ~ /^#/ || line == "") continue
		split(line, f, " ")
		floor[f[1]] = f[2] + 0
	}
	close(ratchet)
}
$1 == "ok" {
	pkg = $2
	pct = -1
	for (i = 3; i <= NF; i++) {
		if ($i == "coverage:" && $(i + 1) ~ /%$/) {
			p = $(i + 1)
			sub(/%/, "", p)
			pct = p + 0
		}
	}
	if (pkg in floor) {
		seen[pkg] = 1
		if (pct < floor[pkg]) {
			printf "coverage ratchet: %s at %.1f%% is below its floor of %d%%\n", pkg, pct, floor[pkg]
			bad = 1
		}
	}
}
END {
	for (pkg in floor) {
		if (!(pkg in seen)) {
			printf "coverage ratchet: %s is listed in %s but absent from go test -cover output\n", pkg, ratchet
			bad = 1
		}
	}
	if (bad) exit 1
}'

echo "coverage ratchet OK"
