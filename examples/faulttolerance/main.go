// Faulttolerance: the introduction's motivating comparison. The same
// fault (one internal node dies) is applied to two algorithms computing
// on the same topology:
//
//   - the tree-based β synchronizer (sensitivity Θ(n)) breaks;
//
//   - the Flajolet–Martin census (sensitivity 0) re-stabilizes and every
//     surviving node still agrees on a sound estimate.
//
//     go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/algo/census"
	"repro/internal/baseline"
	"repro/internal/graph"
)

func main() {
	build := func() *graph.Graph { return graph.Torus(6, 6) }
	victim := 14 // an internal node of the BFS tree rooted at 0

	// --- β synchronizer ---
	gBeta := build()
	beta, err := baseline.NewBeta(gBeta, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("β synchronizer: |χ| = %d critical nodes out of %d\n",
		len(beta.CriticalNodes()), gBeta.NumNodes())
	beta.RunPulses(5)
	gBeta.RemoveNode(victim)
	if err := beta.Pulse(); err != nil {
		fmt.Printf("β synchronizer after node %d died: %v\n", victim, err)
	} else {
		fmt.Println("β synchronizer unexpectedly survived (victim was not internal)")
	}

	// --- FM census ---
	gFM := build()
	cfg := census.Config{Bits: 14, Sketches: 8, Seed: 3}
	net, err := census.NewNetwork(gFM, cfg)
	if err != nil {
		log.Fatal(err)
	}
	net.RunSync(5, nil) // mid-computation…
	gFM.RemoveNode(victim)
	net.RunSyncUntilQuiescent(10 * gFM.NumNodes())

	est := census.Estimate(net.State(0), cfg)
	agree := true
	for v := 0; v < gFM.Cap(); v++ {
		if gFM.Alive(v) && census.Estimate(net.State(v), cfg) != est {
			agree = false
		}
	}
	fmt.Printf("FM census after the same fault: all %d survivors agree=%v, estimate %.0f (survivors %d, originally %d)\n",
		gFM.NumNodes(), agree, est, gFM.NumNodes(), 36)
	fmt.Println("same fault, opposite outcomes — the sensitivity gap of Section 2")
}
