// Quickstart: count the nodes of an anonymous network with the
// Flajolet–Martin census (Pritchard & Vempala, SPAA 2006, Section 1).
//
// Every node holds a few k-bit sketches, repeatedly ORs them with its
// neighbours', and reads the network size off the first zero bit — no
// identifiers, no leader, no routing, and any non-disconnecting fault is
// harmless.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algo/census"
	"repro/internal/graph"
)

func main() {
	// A random connected sensor field of 300 nodes.
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnectedGNP(300, 0.02, rng)
	fmt.Printf("network: %d nodes, %d edges, diameter %d\n",
		g.NumNodes(), g.NumEdges(), g.Diameter())

	// Run the census: 14-bit sketches, 8 per node.
	cfg := census.Config{Bits: 14, Sketches: 8, Seed: 7}
	res, err := census.Run(g, cfg, 10*g.NumNodes())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged after %d synchronous rounds (diameter bounds this)\n", res.Rounds)
	fmt.Printf("every node now estimates n ≈ %.0f (true n = %d)\n",
		res.Estimates[0], g.NumNodes())
}
