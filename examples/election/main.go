// Election: end-to-end randomized leader election (Pritchard & Vempala,
// SPAA 2006, Section 4.7) with a phase-by-phase trace. All nodes start
// identical; random {0,1} labels plus BFS clusters, NP broadcasts, colour
// verification and a traversal agent leave exactly one leader.
//
//	go run ./examples/election
package main

import (
	"fmt"
	"log"

	"repro/internal/algo/election"
	"repro/internal/graph"
)

func main() {
	g := graph.Torus(5, 5)
	n := g.NumNodes()
	fmt.Printf("electing a leader on a 5x5 torus (%d anonymous nodes)\n", n)

	tr := election.New(g, 2026)
	rounds, ok := tr.Run(100000*n, 3*n+10)
	if !ok {
		log.Fatal("no stable leader emerged within the round budget")
	}

	fmt.Printf("done in %d synchronous rounds and %d phases\n", rounds, tr.Phases)
	fmt.Print("remaining candidates per phase: ")
	for i, r := range tr.RemainingPerPhase {
		if i > 0 {
			fmt.Print(" → ")
		}
		fmt.Print(r)
	}
	fmt.Println()
	fmt.Printf("leader: node %d (exactly one, remaining = %d)\n",
		tr.Leaders()[0], tr.Remaining())
}
