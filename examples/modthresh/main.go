// Modthresh: the paper's main theorem (3.7) as an API tour. We write the
// function "exactly two neighbours are RED and the BLUE count is odd" as
// a mod-thresh program, convert it through all three equivalent models —
// mod-thresh → parallel → sequential → mod-thresh — verify each stage
// computes the same function, and watch the size blowups the paper warns
// about.
//
//	go run ./examples/modthresh
package main

import (
	"fmt"
	"log"

	"repro/internal/sm"
)

func main() {
	const (
		RED  = 0
		BLUE = 1
	)
	// "μ_RED == 2 AND μ_BLUE ≡ 1 (mod 2)": Equation (4) for the exact
	// count plus one mod atom.
	original := &sm.ModThresh{
		NumQ: 2,
		NumR: 2,
		Clauses: []sm.Clause{{
			Cond: sm.And{Ps: []sm.Prop{
				sm.ThreshAtom{State: RED, T: 3},
				sm.Not{P: sm.ThreshAtom{State: RED, T: 2}},
				sm.ModAtom{State: BLUE, Rem: 1, Mod: 2},
			}},
			Result: 1,
		}},
		Default: 0,
	}
	fmt.Printf("mod-thresh program (%d atoms): %s → 1 else 0\n",
		original.Size(), original.Clauses[0].Cond)

	// Lemma 3.8: mod-thresh → parallel (divide-and-conquer counters).
	par, err := sm.ModThreshToParallel(original)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("→ parallel program: %d working states (size %d)\n", par.NumW(), par.Size())
	if err := sm.CheckParallel(par); err != nil {
		log.Fatal("parallel program not symmetric: ", err)
	}

	// Lemma 3.5: parallel → sequential (conquer one input at a time).
	seq, err := sm.ParallelToSequential(par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("→ sequential program: %d working states (size %d)\n", seq.NumW(), seq.Size())
	if err := sm.CheckSequential(seq); err != nil {
		log.Fatal("sequential program not symmetric: ", err)
	}

	// Lemma 3.9: sequential → mod-thresh (eventually-periodic iterates).
	back, err := sm.SequentialToModThresh(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("→ back to mod-thresh: %d atoms\n", back.Size())

	// All four compute the same function — exhaustively up to length 8.
	for _, pair := range [][2]sm.Func{{original, par}, {par, seq}, {seq, back}} {
		if err := sm.Equivalent(pair[0], pair[1], 2, 8); err != nil {
			log.Fatal("conversion changed the function: ", err)
		}
	}
	fmt.Println("all four programs agree on every input up to length 8 — Theorem 3.7 in action")

	// Sample evaluations.
	for _, in := range [][]int{
		{RED, RED, BLUE},             // two red, one blue: 1
		{RED, RED, BLUE, BLUE},       // two red, two blue: 0
		{RED, RED, RED, BLUE},        // three red: 0
		{BLUE, RED, BLUE, RED, BLUE}, // two red, three blue: 1
	} {
		fmt.Printf("  f(%v) = %d\n", in, original.Eval(in))
	}
}
