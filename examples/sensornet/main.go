// Sensornet: the Section 2.2 application — a sensor grid routes packets
// to the nearest data sink along shortest paths maintained by the
// distance-label balancing rule, and keeps routing correctly as nodes
// fail (the algorithm is 0-sensitive: the labels simply re-stabilize).
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/internal/algo/shortestpath"
	"repro/internal/graph"
)

func main() {
	// A 10x10 sensor grid with sinks at two corners.
	g := graph.Grid(10, 10)
	sinks := []int{0, 99}
	net, err := shortestpath.NewNetwork(g, sinks, g.NumNodes(), 1)
	if err != nil {
		log.Fatal(err)
	}

	stabilize := func() []int {
		net.RunSyncUntilQuiescent(10 * g.NumNodes())
		labels := make([]int, g.Cap())
		for v := range labels {
			labels[v] = net.State(v).Label
		}
		return labels
	}

	labels := stabilize()
	src := 55 // a sensor in the middle
	path := shortestpath.RoutePath(g, labels, src)
	fmt.Printf("fault-free: sensor %d routes to sink via %v (%d hops)\n",
		src, path, len(path)-1)

	// A row of sensors burns out.
	for _, v := range []int{44, 45, 46, 47} {
		g.RemoveNode(v)
	}
	fmt.Println("faults: sensors 44-47 died")

	labels = stabilize()
	path = shortestpath.RoutePath(g, labels, src)
	if path == nil {
		log.Fatal("routing broke — should not happen while the grid stays connected")
	}
	fmt.Printf("after faults: sensor %d routes via %v (%d hops)\n",
		src, path, len(path)-1)

	// Verify every surviving sensor still routes optimally.
	oracle := g.BFSDistances(sinks...)
	for v := 0; v < g.Cap(); v++ {
		if !g.Alive(v) || oracle[v] == graph.Unreachable {
			continue
		}
		p := shortestpath.RoutePath(g, labels, v)
		if p == nil || len(p)-1 != oracle[v] {
			log.Fatalf("sensor %d routes suboptimally: %v vs distance %d", v, p, oracle[v])
		}
	}
	fmt.Println("all surviving sensors route on exact shortest paths — 0-sensitive, as claimed")
}
