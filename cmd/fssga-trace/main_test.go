package main

import "testing"

func TestBuildGraphNames(t *testing.T) {
	for _, name := range []string{"path", "cycle", "grid", "star"} {
		g, err := buildGraph(name, 9)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.NumNodes() < 2 || g.Validate() != nil {
			t.Errorf("%s: bad graph %v", name, g)
		}
	}
	if _, err := buildGraph("nope", 5); err == nil {
		t.Fatal("unknown graph accepted")
	}
}
