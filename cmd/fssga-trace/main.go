// Command fssga-trace renders the round-by-round evolution of an FSSGA
// algorithm as a text table — the command-line equivalent of watching the
// paper's demo applet.
//
// Usage:
//
//	fssga-trace -algo=twocolor -graph=path -n=8
//	fssga-trace -algo=randomwalk -graph=cycle -n=6 -rounds=30
//	fssga-trace -algo=shortestpath -graph=path -n=10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/algo/randomwalk"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/twocolor"
	"repro/internal/fssga"
	"repro/internal/graph"
	"repro/internal/trace"
)

func main() {
	algo := flag.String("algo", "twocolor", "algorithm: twocolor, randomwalk, shortestpath")
	gname := flag.String("graph", "path", "topology: path, cycle, grid, star")
	n := flag.Int("n", 8, "node count")
	rounds := flag.Int("rounds", 0, "rounds to trace (0 = until quiescent, capped)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := buildGraph(*gname, *n)
	if err != nil {
		fail(err)
	}
	cap := *rounds
	if cap == 0 {
		cap = 6 * g.NumNodes()
	}

	switch *algo {
	case "twocolor":
		net := twocolor.NewNetwork(g, 0, *seed)
		h := trace.RecordUntil(net, cap, func(nt *fssga.Network[twocolor.State]) bool {
			return nt.Quiescent()
		})
		err = h.Render(os.Stdout, func(s twocolor.State) string {
			return map[twocolor.State]string{
				twocolor.Blank: ".", twocolor.Red: "R", twocolor.Blue: "B", twocolor.Failed: "X",
			}[s]
		})
	case "randomwalk":
		tr, werr := randomwalk.New(g, 0, *seed)
		if werr != nil {
			fail(werr)
		}
		h := trace.Record(tr.Net, cap)
		err = h.Render(os.Stdout, func(s randomwalk.State) string {
			return map[randomwalk.State]string{
				randomwalk.Blank: ".", randomwalk.Heads: "h", randomwalk.Tails: "t",
				randomwalk.Eliminated: "x", randomwalk.Flip: "F", randomwalk.Waiting: "W",
				randomwalk.NoTails: "N", randomwalk.OneTails: "1",
			}[s]
		})
	case "shortestpath":
		net, werr := shortestpath.NewNetwork(g, []int{0}, g.NumNodes(), *seed)
		if werr != nil {
			fail(werr)
		}
		h := trace.RecordUntil(net, cap, func(nt *fssga.Network[shortestpath.State]) bool {
			return nt.Quiescent()
		})
		err = h.Render(os.Stdout, func(s shortestpath.State) string {
			if s.Label >= g.NumNodes() {
				return "-"
			}
			return strconv.Itoa(s.Label)
		})
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fail(err)
	}
}

func buildGraph(name string, n int) (*graph.Graph, error) {
	switch name {
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "grid":
		s := 1
		for (s+1)*(s+1) <= n {
			s++
		}
		return graph.Grid(s, s), nil
	case "star":
		return graph.Star(n), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fssga-trace:", err)
	os.Exit(1)
}
