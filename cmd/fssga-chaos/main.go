// Command fssga-chaos runs adversarial fault-injection soak campaigns
// over the paper's algorithms (internal/chaos) and verifies recorded
// failure artifacts.
//
// Usage:
//
//	fssga-chaos                              # full campaign at defaults
//	fssga-chaos -targets=census,bfs -adversaries=chi,burst -seeds=3
//	fssga-chaos -smoke                       # CI preset with expectations
//	fssga-chaos -replay=artifact.json        # verify a recorded artifact
//
// A campaign crosses targets × adversaries × graphs × seeds, running each
// cell with serial and (when -workers > 1) parallel rounds. Expectations
// encode the paper's sensitivity claims: 0-sensitive targets must survive
// every adversary, the Θ(n)-sensitive β synchronizer must fall to the
// χ-targeting adversary, and remaining fragile-target cells are
// informational. Every recorded break is pushed through the full failure
// pipeline — bit-identical replay, then shrinking to a 1-minimal
// schedule. Any cell that violates its expectation writes a replayable
// trace.RunLog artifact into -out and makes the process exit non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chaos"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

type options struct {
	targets      []string
	adversaries  []string
	graphs       []string
	sizes        []int
	seeds        int
	workers      int
	out          string
	attackRounds int
	maxRounds    int
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("fssga-chaos", flag.ContinueOnError)
	targets := fs.String("targets", strings.Join(chaos.TargetNames(), ","), "comma-separated chaos targets")
	adversaries := fs.String("adversaries", strings.Join(chaos.AdversaryNames, ","), "comma-separated adversaries")
	graphs := fs.String("graphs", "gnp,path,grid", "comma-separated topology generators")
	sizes := fs.String("sizes", "24", "comma-separated node counts")
	seeds := fs.Int("seeds", 2, "seeds per cell")
	workers := fs.Int("workers", 4, "worker count for the parallel pass (1 disables it)")
	out := fs.String("out", ".", "directory for failure artifacts")
	smoke := fs.Bool("smoke", false, "run the CI smoke preset (overrides the cell flags)")
	replayPath := fs.String("replay", "", "verify a recorded artifact instead of running a campaign")
	crash := fs.Bool("crash", false, "run the crash-recovery soak instead of a campaign")
	crashN := fs.Int("crash-n", 48, "crash soak: node count")
	crashRounds := fs.Int("crash-rounds", 16, "crash soak: workload rounds")
	attack := fs.Int("attack", 0, "attack horizon in rounds (0 = 2n)")
	maxR := fs.Int("max-rounds", 0, "round budget (0 = attack + 4n + 30)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *replayPath != "" {
		return replayMain(w, *replayPath)
	}
	if *crash {
		return crashMain(w, *crashN, *crashRounds)
	}

	opt := options{
		targets:      splitList(*targets),
		adversaries:  splitList(*adversaries),
		graphs:       splitList(*graphs),
		seeds:        *seeds,
		workers:      *workers,
		out:          *out,
		attackRounds: *attack,
		maxRounds:    *maxR,
	}
	for _, s := range splitList(*sizes) {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "fssga-chaos: bad size %q\n", s)
			return 2
		}
		opt.sizes = append(opt.sizes, n)
	}
	if *smoke {
		// The CI preset: one small random graph, every adversary, two
		// seeds, serial + parallel passes. Election is excluded — it
		// needs a far larger round budget than the smoke time slot.
		opt.targets = []string{"census", "shortestpath", "bfs", "beta"}
		opt.graphs = []string{"gnp"}
		opt.sizes = []int{24}
		opt.seeds = 2
	}
	return campaign(w, opt)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// expectation is a campaign cell's contract with the sensitivity theory.
type expectation int

const (
	// expSurvive: any violation is a regression.
	expSurvive expectation = iota
	// expBreak: the run MUST fail — this cell demonstrates fragility.
	expBreak
	// expAny: fragile target under an untargeted adversary; either
	// outcome is consistent with the paper, so the cell only soaks the
	// monitors and the failure pipeline.
	expAny
)

// expect derives a cell's expectation: 0-sensitive targets survive
// everything (the χ-targeting adversary finds an empty χ); the β
// synchronizer must fall to χ-targeting and must survive a fault-free
// run; all other fragile-target cells are informational.
func expect(b chaos.Builder, adversary string) expectation {
	switch {
	case b.Sensitivity == "0":
		return expSurvive
	case b.Name == "beta" && adversary == "chi":
		return expBreak
	case b.Name == "beta" && adversary == "none":
		return expSurvive
	default:
		return expAny
	}
}

func campaign(w io.Writer, opt options) int {
	cells, unexpected := 0, 0
	for _, tname := range opt.targets {
		b, err := chaos.LookupTarget(tname)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fssga-chaos:", err)
			return 2
		}
		for _, adv := range opt.adversaries {
			for _, gen := range opt.graphs {
				for _, n := range opt.sizes {
					for s := 0; s < opt.seeds; s++ {
						passes := []int{1}
						if opt.workers > 1 {
							passes = append(passes, opt.workers)
						}
						for _, wk := range passes {
							cells++
							cfg := chaos.Config{
								Target:       tname,
								Adversary:    adv,
								Graph:        trace.GraphSpec{Gen: gen, N: n, Seed: int64(s) + 1},
								Seed:         int64(s)*7919 + 11,
								Workers:      wk,
								AttackRounds: opt.attackRounds,
								MaxRounds:    opt.maxRounds,
							}
							if !runCell(w, opt, b, cfg) {
								unexpected++
							}
						}
					}
				}
			}
		}
	}
	if unexpected > 0 {
		fmt.Fprintf(w, "FAIL: %d/%d cells violated expectations (artifacts in %s)\n", unexpected, cells, opt.out)
		return 1
	}
	fmt.Fprintf(w, "ok: %d cells matched expectations\n", cells)
	return 0
}

// runCell executes one campaign cell and reports whether its outcome
// matched its expectation. Every break — expected or not — goes through
// the failure pipeline (bit-identical replay, then shrinking), so the
// machinery that would fire on a real regression is itself exercised on
// every campaign.
func runCell(w io.Writer, opt options, b chaos.Builder, cfg chaos.Config) bool {
	log, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fssga-chaos: %s × %s: %v\n", cfg.Target, cfg.Adversary, err)
		return false
	}
	broke := log.Violation != ""
	status := "survived"
	if broke {
		status = fmt.Sprintf("BROKE at round %d (%s, critical=%v)", log.Round, log.Violation, log.Critical)
	}
	fmt.Fprintf(w, "%-14s × %-7s %s/n=%d seed=%d w=%d: %d rounds, %d faults, %s\n",
		cfg.Target, cfg.Adversary, cfg.Graph.Gen, cfg.Graph.N, cfg.Seed, cfg.Workers,
		log.Rounds, len(log.Events), status)

	switch want := expect(b, cfg.Adversary); {
	case want == expSurvive && broke:
		saveArtifact(w, opt.out, log)
		return false
	case want == expBreak && !broke:
		fmt.Fprintf(w, "  expected a break (sensitivity %s) but the run survived\n", b.Sensitivity)
		return false
	}
	if broke {
		return verifyFailurePipeline(w, opt, cfg, log)
	}
	return true
}

// verifyFailurePipeline replays a recorded break bit-for-bit and shrinks
// its schedule, returning false if either stage disagrees with the
// recording.
func verifyFailurePipeline(w io.Writer, opt options, cfg chaos.Config, log *trace.RunLog) bool {
	if _, err := chaos.VerifyReplay(log); err != nil {
		fmt.Fprintf(w, "  replay MISMATCH: %v\n", err)
		saveArtifact(w, opt.out, log)
		return false
	}
	events, err := trace.RecsToEvents(log.Events)
	if err != nil {
		fmt.Fprintf(w, "  corrupt event record: %v\n", err)
		return false
	}
	shrunk, execs, ok := chaos.ShrinkEvents(cfg, events)
	if !ok {
		fmt.Fprintf(w, "  shrink could not reproduce the failure\n")
		saveArtifact(w, opt.out, log)
		return false
	}
	fmt.Fprintf(w, "  replay ok; shrunk %d -> %d events (%d executions)\n", len(events), len(shrunk), execs)
	return true
}

func saveArtifact(w io.Writer, dir string, log *trace.RunLog) {
	name := fmt.Sprintf("chaos-%s-%s-%s%d-seed%d.json", log.Target, log.Adversary, log.Graph.Gen, log.Graph.N, log.Seed)
	path := filepath.Join(dir, name)
	if err := log.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "fssga-chaos: saving artifact: %v\n", err)
		return
	}
	fmt.Fprintf(w, "  artifact: %s (verify with -replay=%s)\n", path, path)
}

// crashMain runs the crash-recovery soak: kill the process at every
// filesystem write unit of a faulted, checkpointing run, reboot, and
// demand bit-identical resumption or a loud checksum refusal — then
// corrupt committed bytes and demand loud refusals. Exit 0 means zero
// silent-corruption loads across the whole sweep.
func crashMain(w io.Writer, n, rounds int) int {
	cfg := chaos.CrashConfig{
		Graph:     trace.GraphSpec{Gen: "torus", N: n, Seed: 3},
		Seed:      42,
		Workers:   4,
		Rounds:    rounds,
		Every:     rounds / 4,
		FullEvery: 2,
		Keep:      3,
		FaultRate: 0.25,
		BitFlips:  2,
	}
	rep, err := cfg.CrashSweep()
	if err != nil {
		fmt.Fprintf(w, "crash soak FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintf(w, "crash soak: %v\n", rep)
	fmt.Fprintf(w, "crash soak passed: every crash recovered exactly, every corruption refused loudly\n")
	return 0
}

func replayMain(w io.Writer, path string) (code int) {
	// Malformed artifacts must exit with a structured error, never a
	// panic, whatever the replay machinery throws internally.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(w, "fssga-chaos: replay of %s rejected: %v\n", path, r)
			code = 2
		}
	}()
	log, err := trace.LoadRunLog(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fssga-chaos:", err)
		return 2
	}
	re, err := chaos.VerifyReplay(log)
	if err != nil {
		fmt.Fprintf(w, "replay of %s DIVERGED: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(w, "replay of %s is bit-identical: %d rounds, violation=%q at round %d\n",
		path, re.Rounds, re.Violation, re.Round)
	return 0
}
