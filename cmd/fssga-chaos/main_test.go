package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/trace"
)

// The smoke preset is the CI gate: it must exit 0, and its transcript must
// show the β synchronizer falling to χ-targeting with the failure pipeline
// (replay + shrink) green.
func TestSmokeCampaignPasses(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-smoke", "-out=" + t.TempDir()}, &out)
	if code != 0 {
		t.Fatalf("smoke exited %d:\n%s", code, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "beta") || !strings.Contains(text, "BROKE") {
		t.Fatalf("smoke transcript shows no β break:\n%s", text)
	}
	if !strings.Contains(text, "replay ok; shrunk") {
		t.Fatalf("failure pipeline did not run:\n%s", text)
	}
}

// An expected-to-survive cell that breaks must write an artifact and make
// the campaign exit non-zero. The break is forced honestly: shortestpath
// is 0-sensitive (expSurvive), but a one-round budget leaves it
// unconverged, so its final distance oracle fails.
func TestUnexpectedBreakFailsAndWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	code := run([]string{
		"-targets=shortestpath", "-adversaries=burst", "-graphs=gnp", "-sizes=24",
		"-seeds=1", "-workers=1", "-max-rounds=1", "-attack=1", "-out=" + dir,
	}, &out)
	if code != 1 {
		t.Fatalf("truncated run exited %d, want 1:\n%s", code, out.String())
	}
	arts, err := filepath.Glob(filepath.Join(dir, "chaos-*.json"))
	if err != nil || len(arts) == 0 {
		t.Fatalf("no artifact written (%v):\n%s", err, out.String())
	}
	// The artifact itself must replay bit-identically.
	var rep bytes.Buffer
	if code := run([]string{"-replay=" + arts[0]}, &rep); code != 0 {
		t.Fatalf("replay of artifact exited %d:\n%s", code, rep.String())
	}
	if !strings.Contains(rep.String(), "bit-identical") {
		t.Fatalf("replay transcript: %s", rep.String())
	}
}

func TestReplayDetectsDoctoredArtifact(t *testing.T) {
	log, err := chaos.Run(chaos.Config{
		Target:    "beta",
		Adversary: "chi",
		Graph:     trace.GraphSpec{Gen: "gnp", N: 24, Seed: 5},
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if log.Violation == "" {
		t.Fatal("β × chi survived; cannot test replay divergence")
	}
	log.Digests[len(log.Digests)-1] ^= 1
	path := filepath.Join(t.TempDir(), "doctored.json")
	if err := log.Save(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-replay=" + path}, &out); code != 1 {
		t.Fatalf("doctored artifact exited %d, want 1:\n%s", code, out.String())
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-sizes=banana"}, &out); code != 2 {
		t.Fatalf("bad size exited %d, want 2", code)
	}
	if code := run([]string{"-targets=nope"}, &out); code != 2 {
		t.Fatalf("unknown target exited %d, want 2", code)
	}
	if code := run([]string{"-replay=" + filepath.Join(t.TempDir(), "missing.json")}, &out); code != 2 {
		t.Fatalf("missing artifact exited %d, want 2", code)
	}
}

// TestReplayCorruptFixtures: corrupt or malformed artifacts exit 2 with
// a structured error — the replay path never panics.
func TestReplayCorruptFixtures(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		body string
	}{
		{"empty", ""},
		{"truncated", `{"target":"census","graph":{"gen":"cyc`},
		{"not json", "== garbage =="},
		{"wrong shape", `{"target": 7}`},
		{"bad event kind", `{"target":"census","graph":{"gen":"cycle","n":8},"events":[{"step":1,"kind":"?"}]}`},
		{"digest count", `{"target":"census","graph":{"gen":"cycle","n":8},"rounds":2,"digests":[1]}`},
		{"node out of range", `{"target":"census","graph":{"gen":"cycle","n":8},"events":[{"step":1,"kind":"node","node":80}]}`},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if code := run([]string{"-replay", path}, &buf); code != 2 {
			t.Errorf("%s: exit %d, want 2:\n%s", tc.name, code, buf.String())
		}
	}
}

// TestCrashSoakSmoke runs the -crash preset end to end.
func TestCrashSoakSmoke(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-crash", "-crash-n=36", "-crash-rounds=12"}, &out); code != 0 {
		t.Fatalf("crash soak exited %d:\n%s", code, out.String())
	}
	for _, want := range []string{"crash soak:", "units=", "crash soak passed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
