package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/trace"
)

// TestSmokePreset runs the CI preset end to end and checks the report
// lines and exit code.
func TestSmokePreset(t *testing.T) {
	var buf strings.Builder
	if code := run([]string{"-smoke", "-out", t.TempDir()}, &buf); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"theorem 3.7 (smoke):",
		"explore twocolor/path6",
		"explore twocolor/cycle5",
		"explore census/cycle4",
		"explore shortestpath/path5",
		"explore bfs/path5",
		"all checks passed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "election") {
		t.Errorf("smoke preset ran a randomized pair:\n%s", out)
	}
}

// TestPairSelection runs a single named pair and rejects unknown names.
func TestPairSelection(t *testing.T) {
	var buf strings.Builder
	if code := run([]string{"-theorem=false", "-pairs=twocolor/cycle5"}, &buf); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "explore twocolor/cycle5") {
		t.Errorf("missing pair line:\n%s", buf.String())
	}
	buf.Reset()
	if code := run([]string{"-theorem=false", "-pairs=nope"}, &buf); code != 2 {
		t.Fatalf("unknown pair: exit %d, want 2", code)
	}
}

// TestReplayRoundTrip saves a synthetic artifact and verifies the -replay
// path accepts it and rejects a tampered copy.
func TestReplayRoundTrip(t *testing.T) {
	p, err := mc.LookupPair("shortestpath/path5")
	if err != nil {
		t.Fatal(err)
	}
	picks := []int{4, 1, 2, 3, 4, 1}
	ce := &mc.Counterexample{Pair: p.Name, Picks: picks, Digests: p.ReplayPure(picks), Violation: "synthetic"}
	dir := t.TempDir()
	path := filepath.Join(dir, "ce.json")
	if err := ce.RunLog(p.Spec, p.Seed).Save(path); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if code := run([]string{"-replay", path}, &buf); code != 0 {
		t.Fatalf("replay exit %d:\n%s", code, buf.String())
	}
	log, err := trace.LoadRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Digests[0]++
	bad := filepath.Join(dir, "bad.json")
	if err := log.Save(bad); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := run([]string{"-replay", bad}, &buf); code != 1 {
		t.Fatalf("tampered replay exit %d, want 1:\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{"-replay", filepath.Join(dir, "missing.json")}, &buf); code != 2 {
		t.Fatalf("missing artifact exit %d, want 2", code)
	}
}
