package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/trace"
)

// TestSmokePreset runs the CI preset end to end and checks the report
// lines and exit code.
func TestSmokePreset(t *testing.T) {
	var buf strings.Builder
	if code := run([]string{"-smoke", "-out", t.TempDir()}, &buf); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"theorem 3.7 (smoke):",
		"explore twocolor/path6",
		"explore twocolor/cycle5",
		"explore census/cycle4",
		"explore shortestpath/path5",
		"explore bfs/path5",
		"all checks passed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "election") {
		t.Errorf("smoke preset ran a randomized pair:\n%s", out)
	}
}

// TestPairSelection runs a single named pair and rejects unknown names.
func TestPairSelection(t *testing.T) {
	var buf strings.Builder
	if code := run([]string{"-theorem=false", "-pairs=twocolor/cycle5"}, &buf); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "explore twocolor/cycle5") {
		t.Errorf("missing pair line:\n%s", buf.String())
	}
	buf.Reset()
	if code := run([]string{"-theorem=false", "-pairs=nope"}, &buf); code != 2 {
		t.Fatalf("unknown pair: exit %d, want 2", code)
	}
}

// TestReplayRoundTrip saves a synthetic artifact and verifies the -replay
// path accepts it and rejects a tampered copy.
func TestReplayRoundTrip(t *testing.T) {
	p, err := mc.LookupPair("shortestpath/path5")
	if err != nil {
		t.Fatal(err)
	}
	picks := []int{4, 1, 2, 3, 4, 1}
	ce := &mc.Counterexample{Pair: p.Name, Picks: picks, Digests: p.ReplayPure(picks), Violation: "synthetic"}
	dir := t.TempDir()
	path := filepath.Join(dir, "ce.json")
	if err := ce.RunLog(p.Spec, p.Seed).Save(path); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if code := run([]string{"-replay", path}, &buf); code != 0 {
		t.Fatalf("replay exit %d:\n%s", code, buf.String())
	}
	log, err := trace.LoadRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Digests[0]++
	bad := filepath.Join(dir, "bad.json")
	if err := log.Save(bad); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := run([]string{"-replay", bad}, &buf); code != 1 {
		t.Fatalf("tampered replay exit %d, want 1:\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{"-replay", filepath.Join(dir, "missing.json")}, &buf); code != 2 {
		t.Fatalf("missing artifact exit %d, want 2", code)
	}
}

// TestReplayCorruptFixtures: corrupt artifacts are structured non-zero
// exits (2 for unloadable files, 1 for loadable-but-invalid schedules) —
// the replay path never panics, even on picks outside the topology.
func TestReplayCorruptFixtures(t *testing.T) {
	dir := t.TempDir()
	p, err := mc.LookupPair("twocolor/cycle5")
	if err != nil {
		t.Fatal(err)
	}
	outPicks := &trace.RunLog{
		Target: "mc/" + p.Name, Graph: p.Spec, Rounds: 1, Round: 1,
		Picks: []int{99}, Digests: []uint64{1},
	}
	picksPath := filepath.Join(dir, "picks.json")
	if err := outPicks.Save(picksPath); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body string
		path string
		want int
	}{
		{name: "empty", body: "", want: 2},
		{name: "truncated", body: `{"target":"mc/twocolor/cycle5","graph":{"g`, want: 2},
		{name: "not json", body: "== garbage ==", want: 2},
		{name: "negative pick", body: `{"target":"mc/twocolor/cycle5","graph":{"gen":"cycle","n":5},"picks":[-1]}`, want: 2},
		{name: "not an mc artifact", body: `{"target":"census","graph":{"gen":"cycle","n":8}}`, want: 1},
		{name: "picks out of range", path: picksPath, want: 1},
	}
	for _, tc := range cases {
		path := tc.path
		if path == "" {
			path = filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var buf strings.Builder
		if code := run([]string{"-replay", path}, &buf); code != tc.want {
			t.Errorf("%s: exit %d, want %d:\n%s", tc.name, code, tc.want, buf.String())
		}
	}
}
