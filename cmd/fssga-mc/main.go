// Command fssga-mc runs the bounded model checker (internal/mc): an
// exhaustive Theorem 3.7 verification over every canonical program within
// a size bound, and an exhaustive exploration of every asynchronous
// activation order of the paper's algorithms on small topologies.
//
// Usage:
//
//	fssga-mc                          # full sweep: theorem + all pairs
//	fssga-mc -smoke                   # CI preset: smaller bounds, no randomized pairs
//	fssga-mc -pairs=twocolor/cycle5   # explore selected pairs only
//	fssga-mc -theorem=false           # skip the Theorem 3.7 sweep
//	fssga-mc -replay=artifact.json    # verify a recorded counterexample artifact
//
// Any counterexample writes a replayable trace.RunLog artifact into -out
// and makes the process exit 1 (2 for setup/usage errors).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/mc"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("fssga-mc", flag.ContinueOnError)
	fs.SetOutput(w)
	smoke := fs.Bool("smoke", false, "run the CI smoke preset (smaller theorem bounds, deterministic pairs only)")
	theorem := fs.Bool("theorem", true, "run the Theorem 3.7 equivalence sweep")
	interleave := fs.Bool("interleave", true, "run the interleaving exploration")
	pairsFlag := fs.String("pairs", "", "comma-separated pair names to explore (default: all)")
	out := fs.String("out", ".", "directory for counterexample artifacts")
	replayPath := fs.String("replay", "", "verify a recorded artifact instead of running the checker")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *replayPath != "" {
		return replayMain(w, *replayPath)
	}

	exit := 0
	if *theorem {
		cfg := mc.DefaultTheoremConfig()
		mode := "full"
		if *smoke {
			cfg = mc.SmokeTheoremConfig()
			mode = "smoke"
		}
		rep := mc.CheckTheorem37(cfg)
		fmt.Fprintf(w, "theorem 3.7 (%s): %d programs verified (%d canonical sequential, %d symmetric; %d mod-thresh; %d conversions)\n",
			mode, rep.Programs(), rep.SeqPrograms, rep.SeqSymmetric, rep.MTPrograms, rep.Conversions)
		if !rep.Ok() {
			exit = 1
			fmt.Fprintf(w, "FAIL: %d theorem violations\n", rep.FailureCount)
			for _, f := range rep.Failures {
				fmt.Fprintf(w, "  %s\n", f)
			}
		}
	}

	if *interleave {
		pairs, err := selectPairs(*pairsFlag, *smoke)
		if err != nil {
			fmt.Fprintf(w, "fssga-mc: %v\n", err)
			return 2
		}
		for _, p := range pairs {
			rep := p.Explore()
			status := "ok"
			if rep.Bounded {
				status = "ok (bounded)"
			}
			if !rep.Ok() {
				status = "FAIL"
				exit = 1
			}
			fmt.Fprintf(w, "explore %-18s %-12s states=%-6d transitions=%-6d slept=%-5d fixpoints=%d\n",
				p.Name, status, rep.States, rep.Transitions, rep.Slept, rep.Fixpoints)
			if rep.Counterexample != nil {
				fmt.Fprintf(w, "  counterexample: %s\n", rep.Counterexample)
				path := filepath.Join(*out, "mc-"+strings.ReplaceAll(p.Name, "/", "-")+".json")
				if err := rep.Counterexample.RunLog(p.Spec, p.Seed).Save(path); err != nil {
					fmt.Fprintf(w, "  saving artifact: %v\n", err)
				} else {
					fmt.Fprintf(w, "  artifact: %s (verify with -replay=%s)\n", path, path)
				}
			}
		}
	}

	if exit == 0 {
		fmt.Fprintln(w, "fssga-mc: all checks passed")
	}
	return exit
}

// selectPairs resolves the -pairs flag against the registry; the smoke
// preset drops randomized (budget-bounded) pairs to stay inside CI time.
func selectPairs(list string, smoke bool) ([]mc.Pair, error) {
	if list != "" {
		var pairs []mc.Pair
		for _, name := range strings.Split(list, ",") {
			p, err := mc.LookupPair(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, p)
		}
		return pairs, nil
	}
	var pairs []mc.Pair
	for _, p := range mc.Pairs() {
		if smoke && p.Randomized {
			continue
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// replayMain verifies a recorded counterexample artifact. Malformed
// artifacts exit with a structured error, never a panic.
func replayMain(w io.Writer, path string) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(w, "fssga-mc: replay of %s rejected: %v\n", path, r)
			code = 2
		}
	}()
	log, err := trace.LoadRunLog(path)
	if err != nil {
		fmt.Fprintf(w, "fssga-mc: %v\n", err)
		return 2
	}
	if err := mc.VerifyReplay(log); err != nil {
		fmt.Fprintf(w, "fssga-mc: replay FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintf(w, "fssga-mc: %s replays bit-identically (%d activations, violation %q)\n",
		path, len(log.Picks), log.Violation)
	return 0
}
