package main

import (
	"testing"
	"time"
)

// The perf report timestamp must honour SOURCE_DATE_EPOCH so BENCH_*.json
// artifacts are byte-reproducible when the caller pins the build time.
func TestBenchTimestampReproducible(t *testing.T) {
	t.Setenv("SOURCE_DATE_EPOCH", "1700000000")
	want := time.Unix(1700000000, 0).UTC().Format(time.RFC3339)
	if got := benchTimestamp(); got != want {
		t.Fatalf("benchTimestamp() = %q, want %q", got, want)
	}
	if got := benchTimestamp(); got != want {
		t.Fatalf("pinned timestamp not stable: %q", got)
	}
	t.Setenv("SOURCE_DATE_EPOCH", "not-a-number")
	if benchTimestamp() == "" {
		t.Fatal("malformed SOURCE_DATE_EPOCH must fall back, not return empty")
	}
}
