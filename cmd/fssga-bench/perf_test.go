package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The perf report timestamp must honour SOURCE_DATE_EPOCH so BENCH_*.json
// artifacts are byte-reproducible when the caller pins the build time.
func TestBenchTimestampReproducible(t *testing.T) {
	t.Setenv("SOURCE_DATE_EPOCH", "1700000000")
	want := time.Unix(1700000000, 0).UTC().Format(time.RFC3339)
	if got := benchTimestamp(); got != want {
		t.Fatalf("benchTimestamp() = %q, want %q", got, want)
	}
	if got := benchTimestamp(); got != want {
		t.Fatalf("pinned timestamp not stable: %q", got)
	}
	t.Setenv("SOURCE_DATE_EPOCH", "not-a-number")
	if benchTimestamp() == "" {
		t.Fatal("malformed SOURCE_DATE_EPOCH must fall back, not return empty")
	}
}

// fakeMeasure returns a fixed result without running the benchmark body,
// so the suite's collection/report/gate plumbing is testable without
// paying for real measurements.
func fakeMeasure(ns int64) measureFunc {
	return func(fn func(b *testing.B)) testing.BenchmarkResult {
		return testing.BenchmarkResult{N: 1, T: time.Duration(ns)}
	}
}

// TestRunPerfReportAndTrajectory drives the whole -perf path with a fake
// measurer: schema v2, per-result gomaxprocs, the acceptance series
// (65536-node scaling sweep and the million-node lattice), and the
// trajectory file gaining one headline entry per run.
func TestRunPerfReportAndTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("constructs million-node networks; skipped in -short mode")
	}
	t.Setenv("SOURCE_DATE_EPOCH", "1700000000")
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_engine.json")
	traj := filepath.Join(dir, "BENCH_trajectory.json")

	for run := 1; run <= 2; run++ {
		if err := runPerf(1, out, traj, fakeMeasure(1000)); err != nil {
			t.Fatalf("runPerf (run %d): %v", run, err)
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report perfReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != perfSchema {
		t.Fatalf("schema = %q, want %q", report.Schema, perfSchema)
	}
	if report.NumCPU < 1 {
		t.Fatalf("num_cpu = %d", report.NumCPU)
	}
	names := map[string]perfResult{}
	for _, r := range report.Results {
		if r.Gomaxprocs < 1 {
			t.Fatalf("%s: gomaxprocs = %d, want per-result value >= 1", r.Name, r.Gomaxprocs)
		}
		names[r.Name] = r
	}
	for _, want := range []string{
		headlineSeries,
		"SyncRoundParallel/lattice/dense/n=65536/w=1",
		"SyncRoundParallel/lattice/dense/n=65536/w=2",
		"SyncRoundParallel/lattice/dense/n=65536/w=4",
		"SyncRoundParallel/lattice/dense/n=65536/w=8",
		"SyncRound/lattice/dense/n=1048576",
		"SyncRoundParallel/lattice/dense/n=1048576/w=8",
		"QuiescedRound/shortestpath/parallel-frontier/n=2304/w=4",
		"Checkpoint/write/full/n=65536",
		"Checkpoint/write/delta/n=65536",
		"Checkpoint/restore/full/n=65536",
		"Checkpoint/restore/delta/n=65536",
		"Checkpoint/write/full/n=1048576",
		"Checkpoint/write/delta/n=1048576",
		"Checkpoint/restore/full/n=1048576",
		"Checkpoint/restore/delta/n=1048576",
		"HubRound/star/linear/n=65536",
		"HubRound/star/agg/n=65536",
		"HubRound/star/linear/n=1048576",
		"HubRound/star/agg/n=1048576",
		"HubRound/plaw/linear/n=65536",
		"HubRound/plaw/agg/n=65536",
		"HubRound/plaw/linear/n=1048576",
		"HubRound/plaw/agg/n=1048576",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("report lacks series %q", want)
		}
	}
	if r := names[headlineSeries]; r.Gomaxprocs != 1 {
		t.Errorf("serial headline recorded at gomaxprocs=%d, want 1", r.Gomaxprocs)
	}

	var tf trajectoryFile
	data, err = os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if tf.Schema != trajectorySchema {
		t.Fatalf("trajectory schema = %q", tf.Schema)
	}
	if len(tf.Entries) != 2 {
		t.Fatalf("trajectory has %d entries after two runs, want 2", len(tf.Entries))
	}
	for _, name := range trajectoryHeadline {
		if _, ok := tf.Entries[1].Headline[name]; !ok {
			t.Errorf("trajectory entry lacks headline series %q", name)
		}
	}
}

// TestRunHubSeriesAndSpeedups drives the standalone -hub mode with a
// fake measurer: all eight HubRound series must be printed, followed by
// one linear/agg speedup line per topology/size pair.
func TestRunHubSeriesAndSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("constructs million-node networks; skipped in -short mode")
	}
	var buf strings.Builder
	if err := runHub(1, fakeMeasure(1000), &buf); err != nil {
		t.Fatalf("runHub: %v", err)
	}
	out := buf.String()
	for _, topo := range []string{"star", "plaw"} {
		for _, mode := range []string{"linear", "agg"} {
			for _, n := range []int{65536, 1048576} {
				series := "HubRound/" + topo + "/" + mode + "/n=" + strconv.Itoa(n)
				if !strings.Contains(out, series) {
					t.Errorf("output lacks series %q", series)
				}
			}
		}
	}
	if got := strings.Count(out, "speedup"); got != 4 {
		t.Errorf("output has %d speedup lines, want 4:\n%s", got, out)
	}
}

// TestAppendTrajectoryRejectsCorruptFile: a corrupt or foreign-schema
// trajectory file is an error, never silently overwritten.
func TestAppendTrajectoryRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	report := perfReport{Schema: perfSchema, Generated: "x", Results: nil}

	os.WriteFile(path, []byte("not json"), 0o644)
	if err := appendTrajectory(path, report); err == nil {
		t.Fatal("corrupt trajectory file must be an error")
	}
	os.WriteFile(path, []byte(`{"schema":"other/v9","entries":[]}`), 0o644)
	if err := appendTrajectory(path, report); err == nil {
		t.Fatal("foreign schema must be an error")
	}
}

// gateBaseline writes a v2 report containing both gated headline series
// with the given ns/op and allocs and returns its path.
func gateBaseline(t *testing.T, ns float64, allocs int64) string {
	t.Helper()
	report := perfReport{
		Schema: perfSchema,
		Results: []perfResult{
			{Name: "SyncRound/lattice/map/n=512", NsPerOp: 1, Gomaxprocs: 1},
			{Name: headlineSeries, NsPerOp: ns, AllocsPerOp: allocs, Gomaxprocs: 1},
			{Name: hubGateSeries, NsPerOp: ns, AllocsPerOp: allocs, Gomaxprocs: 1},
		},
	}
	data, _ := json.Marshal(report)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPerfGateVerdicts: the gate passes inside tolerance, fails outside
// it, fails on fresh allocations, and is one-sided (faster never fails).
func TestPerfGateVerdicts(t *testing.T) {
	var buf strings.Builder
	// Measured 1000ns vs baseline 800ns at 1.6x tolerance (limit 1280): pass.
	if err := runPerfGate(gateBaseline(t, 800, 0), 1, 1.6, fakeMeasure(1000), &buf); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	if !strings.Contains(buf.String(), headlineSeries) {
		t.Fatal("gate output must name the headline series")
	}
	// Measured 2000ns vs limit 1280: regression.
	if err := runPerfGate(gateBaseline(t, 800, 0), 1, 1.6, fakeMeasure(2000), &buf); err == nil {
		t.Fatal("regression beyond tolerance must fail")
	}
	// Much faster than baseline: one-sided gate passes.
	if err := runPerfGate(gateBaseline(t, 800, 0), 1, 1.6, fakeMeasure(1), &buf); err != nil {
		t.Fatalf("speedup must pass: %v", err)
	}
	// Hot path started allocating against a zero-alloc baseline.
	alloc := func(fn func(b *testing.B)) testing.BenchmarkResult {
		return testing.BenchmarkResult{N: 1, T: time.Nanosecond, MemAllocs: 5, MemBytes: 100}
	}
	if err := runPerfGate(gateBaseline(t, 800, 0), 1, 1.6, alloc, &buf); err == nil {
		t.Fatal("new allocations must fail the gate")
	}
}

// TestPerfGateBaselineErrors: missing file, wrong schema, and a report
// without the headline series are all explicit errors.
func TestPerfGateBaselineErrors(t *testing.T) {
	var buf strings.Builder
	if err := runPerfGate(filepath.Join(t.TempDir(), "absent.json"), 1, 1.6, fakeMeasure(1), &buf); err == nil {
		t.Fatal("missing baseline must be an error")
	}

	v1 := filepath.Join(t.TempDir(), "v1.json")
	os.WriteFile(v1, []byte(`{"schema":"fssga-bench/perf/v1","results":[]}`), 0o644)
	if err := runPerfGate(v1, 1, 1.6, fakeMeasure(1), &buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("v1 schema must be a schema error, got %v", err)
	}

	empty := gateBaseline(t, 800, 0)
	data, _ := os.ReadFile(empty)
	var r perfReport
	json.Unmarshal(data, &r)
	r.Results = r.Results[:1] // drop the headline series
	data, _ = json.Marshal(r)
	os.WriteFile(empty, data, 0o644)
	if err := runPerfGate(empty, 1, 1.6, fakeMeasure(1), &buf); err == nil || !strings.Contains(err.Error(), "headline") {
		t.Fatalf("missing headline series must be an error, got %v", err)
	}
}
