// Command fssga-bench regenerates the experiment tables E1–E13 of the
// Pritchard–Vempala (SPAA 2006) reproduction: one table per quantitative
// claim, as indexed in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fssga-bench                 # run every experiment (full sweeps)
//	fssga-bench -exp=E10        # run one experiment
//	fssga-bench -quick          # reduced sweeps (seconds, not minutes)
//	fssga-bench -seed=7         # change the master seed
//	fssga-bench -perf           # engine perf series (ns/op, allocs/op) → JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment ID to run (E1..E13); empty = all")
	seed := flag.Int64("seed", 1, "master random seed")
	quick := flag.Bool("quick", false, "reduced sweeps and trial counts")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	perf := flag.Bool("perf", false, "run the engine perf suite instead of the experiment tables")
	out := flag.String("out", "BENCH_engine.json", "output path for the -perf JSON report")
	flag.Parse()

	if *perf {
		if err := runPerf(*seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "fssga-bench: perf suite failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := exp.Options{Seed: *seed, Quick: *quick}
	print := func(t *exp.Table) {
		if *markdown {
			t.PrintMarkdown(os.Stdout)
		} else {
			t.Print(os.Stdout)
		}
	}
	if *expID == "" {
		for _, id := range exp.IDs() {
			print(exp.Registry[id](opts))
		}
		return
	}
	id := strings.ToUpper(strings.TrimSpace(*expID))
	runner, ok := exp.Registry[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "fssga-bench: unknown experiment %q (known: %s)\n",
			*expID, strings.Join(exp.IDs(), " "))
		os.Exit(2)
	}
	print(runner(opts))
}
