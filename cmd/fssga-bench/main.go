// Command fssga-bench regenerates the experiment tables E1–E13 of the
// Pritchard–Vempala (SPAA 2006) reproduction: one table per quantitative
// claim, as indexed in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	fssga-bench                 # run every experiment (full sweeps)
//	fssga-bench -exp=E10        # run one experiment
//	fssga-bench -quick          # reduced sweeps (seconds, not minutes)
//	fssga-bench -seed=7         # change the master seed
//	fssga-bench -perf           # engine perf series (ns/op, allocs/op) → JSON
//	fssga-bench -hub            # hub-round series only: linear vs aggregated views
//	fssga-bench -perfgate       # regression gate vs the committed BENCH_engine.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("fssga-bench", flag.ContinueOnError)
	fs.SetOutput(w)
	expID := fs.String("exp", "", "experiment ID to run (E1..E13); empty = all")
	seed := fs.Int64("seed", 1, "master random seed")
	quick := fs.Bool("quick", false, "reduced sweeps and trial counts")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	perf := fs.Bool("perf", false, "run the engine perf suite instead of the experiment tables")
	out := fs.String("out", "BENCH_engine.json", "output path for the -perf JSON report")
	trajectory := fs.String("trajectory", "BENCH_trajectory.json", "trajectory file the -perf headline subset is appended to (empty disables)")
	hub := fs.Bool("hub", false, "run only the hub-round aggregation series and print linear/agg speedups")
	perfgate := fs.Bool("perfgate", false, "re-measure the gated headline series and fail on regression vs -baseline")
	baseline := fs.String("baseline", "BENCH_engine.json", "committed perf report the -perfgate compares against")
	tolerance := fs.Float64("tolerance", 1.6, "one-sided slowdown factor the -perfgate tolerates")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *perfgate {
		if err := runPerfGate(*baseline, *seed, *tolerance, testing.Benchmark, w); err != nil {
			fmt.Fprintf(w, "fssga-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *hub {
		if err := runHub(*seed, testing.Benchmark, w); err != nil {
			fmt.Fprintf(w, "fssga-bench: hub suite failed: %v\n", err)
			return 1
		}
		return 0
	}

	if *perf {
		if err := runPerf(*seed, *out, *trajectory, testing.Benchmark); err != nil {
			fmt.Fprintf(w, "fssga-bench: perf suite failed: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, id := range exp.IDs() {
			fmt.Fprintln(w, id)
		}
		return 0
	}

	opts := exp.Options{Seed: *seed, Quick: *quick}
	print := func(t *exp.Table) {
		if *markdown {
			t.PrintMarkdown(w)
		} else {
			t.Print(w)
		}
	}
	if *expID == "" {
		for _, id := range exp.IDs() {
			print(exp.Registry[id](opts))
		}
		return 0
	}
	id := strings.ToUpper(strings.TrimSpace(*expID))
	runner, ok := exp.Registry[id]
	if !ok {
		fmt.Fprintf(w, "fssga-bench: unknown experiment %q (known: %s)\n",
			*expID, strings.Join(exp.IDs(), " "))
		return 2
	}
	print(runner(opts))
	return 0
}
