package main

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/exp"
)

// TestQuickRunAllExperiments is the bench smoke test: `fssga-bench
// -quick` must exit 0 and emit every registered experiment's table
// header, so a broken or silently-skipped experiment fails CI rather
// than vanishing from EXPERIMENTS.md.
func TestQuickRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("bench quick sweep skipped in -short mode")
	}
	var buf strings.Builder
	if code := run([]string{"-quick"}, &buf); code != 0 {
		t.Fatalf("fssga-bench -quick exited %d", code)
	}
	out := buf.String()
	ids := exp.IDs()
	if len(ids) < 13 {
		t.Fatalf("registry lists %d experiments, want at least 13", len(ids))
	}
	for _, id := range ids {
		header := fmt.Sprintf("== %s:", id)
		if !strings.Contains(out, header) {
			t.Errorf("output missing experiment header %q", header)
		}
	}
}

// TestListAndUnknownExperiment covers the cheap CLI paths: -list prints
// every ID, and an unknown -exp is a usage error (exit 2).
func TestListAndUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if code := run([]string{"-list"}, &buf); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, id := range exp.IDs() {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("-list missing %s", id)
		}
	}
	buf.Reset()
	if code := run([]string{"-exp", "E99"}, &buf); code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
}
