package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/algo/bfs"
	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/shortestpath"
	"repro/internal/checkpoint"
	"repro/internal/fssga"
	"repro/internal/graph"
)

// The -perf suite measures the execution engine itself — synchronous-round
// throughput and allocation behaviour across view representations (dense
// multiplicity vectors vs the map fallback), worker counts on the sharded
// pool, and the frontier round modes — and writes the series to a
// BENCH_*.json report plus a headline subset appended to the trajectory
// file, so the perf history is recorded per PR alongside the experiment
// tables. scripts/check.sh guards the headline series against the
// committed report via -perfgate.

// perfResult is one measured series point. GOMAXPROCS is recorded per
// result, not per file: serial series are pinned to one proc while
// parallel series run at the machine's real CPU count, and a report that
// claimed a single file-level value would misdescribe one or the other.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Gomaxprocs  int     `json:"gomaxprocs"`
}

// perfReport is the BENCH_*.json schema, version 2: GOMAXPROCS moved
// from the file level into each result; NumCPU records the machine.
type perfReport struct {
	Schema    string       `json:"schema"`
	Generated string       `json:"generated"`
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Seed      int64        `json:"seed"`
	Results   []perfResult `json:"results"`
}

const perfSchema = "fssga-bench/perf/v2"

// headlineSeries is the general-engine series the -perfgate regression
// gate re-measures and compares against the committed report.
const headlineSeries = "SyncRound/lattice/dense/n=2048"

// hubGateSeries is the aggregation-path series the gate guards alongside
// headlineSeries: steady-state frontier rounds on the 65536-node star
// with the divide-and-conquer hub trees engaged. A regression here means
// the incremental O(log deg) path degraded back toward the linear scan.
const hubGateSeries = "HubRound/star/agg/n=65536"

// trajectoryHeadline is the subset of series names recorded per -perf
// run in the trajectory file: the gate's guarded serial series, the
// parallel scaling endpoints, the million-node runs, and the hub-round
// linear-vs-aggregated pair.
var trajectoryHeadline = []string{
	headlineSeries,
	"SyncRoundParallel/lattice/dense/n=65536/w=1",
	"SyncRoundParallel/lattice/dense/n=65536/w=8",
	"SyncRound/lattice/dense/n=1048576",
	"SyncRoundParallel/lattice/dense/n=1048576/w=8",
	"Checkpoint/write/full/n=1048576",
	"Checkpoint/restore/delta/n=1048576",
	"HubRound/star/linear/n=65536",
	hubGateSeries,
	"HubRound/plaw/agg/n=1048576",
}

// measureFunc runs one benchmark body; testing.Benchmark in production,
// a fake in tests so the suite's plumbing is testable in milliseconds.
type measureFunc func(fn func(b *testing.B)) testing.BenchmarkResult

// lattice is the perf suite's reference dense automaton: max-diffusion
// over states 0..K-1, implemented with closure-free observations so the
// hot path is purely view construction plus O(K) capped lookups.
type lattice struct{ k int }

func (l lattice) NumStates() int       { return l.k }
func (l lattice) StateIndex(s int) int { return s }
func (l lattice) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	for q := l.k - 1; q > self; q-- {
		if view.AnyState(q) {
			//fssga:nondet q walks the fixed range (self, k) downward; it is bounded by the automaton's state count, not by state arithmetic
			return q
		}
	}
	return self
}

// SaturationFootprint implements fssga.SaturatingAutomaton: Step reads
// only AnyState presence, the (1, 1) footprint. Declaring it keeps the
// headline lattice series exercising the aggregation seam on topologies
// with no hubs, so the -perfgate continuously prices the seam at zero.
func (l lattice) SaturationFootprint() (int, int) { return 1, 1 }

const latticeK = 16

// latticeNet builds the lattice-diffusion network for the G(n, p) series.
// The graph seed is derived from (seed, n) alone — not from a shared
// stream consumed by earlier series — so the -perfgate re-measurement
// reconstructs the exact headline workload without running the rest of
// the suite.
func latticeNet(seed int64, n int) *fssga.Network[int] {
	rng := rand.New(rand.NewSource(seed + int64(n)))
	g := graph.RandomConnectedGNP(n, 8.0/float64(n), rng)
	return fssga.New[int](g, lattice{latticeK}, func(v int) int { return v % latticeK }, seed)
}

func benchRound[S comparable](net *fssga.Network[S]) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		net.SyncRound() // warm up scratch outside the measured region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRound()
		}
	}
}

func benchRoundParallel[S comparable](net *fssga.Network[S], workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		net.SyncRoundParallel(workers) // warm up scratch and the pool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRoundParallel(workers)
		}
	}
}

func benchFrontierRound[S comparable](net *fssga.Network[S]) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		net.SyncRoundFrontier() // warm up scratch outside the measured region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRoundFrontier()
		}
	}
}

// The HubRound series measure the steady-state cost the view-aggregation
// subsystem exists to remove: a handful of churning neighbours forcing a
// high-degree node to rebuild its view every round. The blinker automaton
// models exactly that regime — togglers flip 0<->1 forever, watchers
// (the hubs) hold state 2 while any toggler is present and absorb to 3
// otherwise, everyone else is inert — so after a short warm-up the
// frontier is just the togglers plus the hubs they touch, and each
// measured round is one view rebuild per live hub: a full degree-scan on
// the linear path, an O(log deg) tree patch on the aggregated one.
const (
	blinkOff   = 0 // toggler, currently off
	blinkOn    = 1 // toggler, currently on
	blinkWatch = 2 // high-degree watcher, holding while togglers blink
	blinkDone  = 3 // absorbing inert state
)

type blinker struct{}

func (blinker) NumStates() int       { return 4 }
func (blinker) StateIndex(s int) int { return s }

// SaturationFootprint implements fssga.SaturatingAutomaton: Step reads
// only AnyState presence, the (1, 1) footprint.
func (blinker) SaturationFootprint() (int, int) { return 1, 1 }

func (blinker) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	switch self {
	case blinkOff:
		return blinkOn
	case blinkOn:
		return blinkOff
	case blinkWatch:
		if view.AnyState(blinkOff) || view.AnyState(blinkOn) {
			return blinkWatch
		}
		return blinkDone
	default:
		return blinkDone
	}
}

// hubTogglers is the steady-state churn width: how many of the hub's
// neighbours keep flipping per round.
const hubTogglers = 16

// hubPlawBlock and hubPlawEPN pin the power-law block shape for the hub
// series: 16384-node preferential-attachment blocks with four edges per
// node, replicated to reach each target size.
const (
	hubPlawBlock = 16384
	hubPlawEPN   = 4
)

// hubCase is one heavy-hub snapshot the HubRound series sweep; csr is a
// constructor so list literals stay cheap until a case actually runs.
type hubCase struct {
	topo string
	n    int
	csr  func() *graph.CSR
}

func hubCases(seed int64) []hubCase {
	return []hubCase{
		{"star", 65536, func() *graph.CSR { return graph.StarCSR(65536) }},
		{"star", 1048576, func() *graph.CSR { return graph.StarCSR(1048576) }},
		{"plaw", 65536, func() *graph.CSR { return graph.PLawCSR(hubPlawBlock, 4, hubPlawEPN, seed) }},
		{"plaw", 1048576, func() *graph.CSR { return graph.PLawCSR(hubPlawBlock, 64, hubPlawEPN, seed) }},
	}
}

// hubBenchNet builds the blinker network on a heavy-hub snapshot and
// advances it to the steady state the HubRound series measure. Watchers
// are the nodes at or above the default aggregation cutoff; the togglers
// are the first hubTogglers ordinary neighbours of node 0, so node 0 —
// the heaviest hub in both topologies — rebuilds its view every round.
// linear pins the cutoff above any degree so the tree path never
// engages and every rebuild is a full neighbourhood scan.
func hubBenchNet(c *graph.CSR, seed int64, linear bool) *fssga.Network[int] {
	watcher := func(v int) bool { return c.Degree(v) >= fssga.AggDefaultCutoff }
	togglers := make(map[int]bool, hubTogglers)
	for _, u := range c.Neighbors(0) {
		if !watcher(int(u)) {
			togglers[int(u)] = true
			if len(togglers) == hubTogglers {
				break
			}
		}
	}
	init := func(v int) int {
		switch {
		case watcher(v):
			return blinkWatch
		case togglers[v]:
			return blinkOff
		default:
			return blinkDone
		}
	}
	net := fssga.NewFromCSR[int](c, blinker{}, init, seed)
	if linear {
		net.SetAggDegreeCutoff(1 << 30)
	}
	for i := 0; i < 4; i++ {
		net.SyncRoundFrontier() // settle the inert bulk; only the hub ball stays live
	}
	return net
}

// collectHubRounds appends the eight HubRound series through the given
// serial recorder; shared by collectPerf (section 7) and the standalone
// -hub mode.
func collectHubRounds(seed int64, serial func(name string, fn func(b *testing.B))) {
	for _, tc := range hubCases(seed) {
		c := tc.csr()
		for _, mode := range []struct {
			name   string
			linear bool
		}{{"linear", true}, {"agg", false}} {
			net := hubBenchNet(c, seed, mode.linear)
			serial(fmt.Sprintf("HubRound/%s/%s/n=%d", tc.topo, mode.name, tc.n),
				benchFrontierRound(net))
			net.Close()
		}
	}
}

// withProcs runs fn at the given GOMAXPROCS and restores the old value.
func withProcs(procs int, fn func()) {
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// collectPerf runs the engine perf suite and returns the series.
// Serial series are pinned to GOMAXPROCS=1; parallel series run at the
// machine's real CPU count (the former file-level GOMAXPROCS made the
// parallel numbers meaningless whenever the caller's setting — one proc
// under the old default — serialised the pool).
func collectPerf(seed int64, measure measureFunc) []perfResult {
	var results []perfResult
	record := func(name string, fn func(b *testing.B)) {
		r := measure(fn)
		results = append(results, perfResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Gomaxprocs:  runtime.GOMAXPROCS(0),
		})
		fmt.Fprintf(os.Stderr, "%-48s %12.0f ns/op %8d allocs/op %10d B/op  procs=%d\n",
			name, float64(r.NsPerOp()), r.AllocsPerOp(), r.AllocedBytesPerOp(), runtime.GOMAXPROCS(0))
	}
	serial := func(name string, fn func(b *testing.B)) {
		withProcs(1, func() { record(name, fn) })
	}
	parallel := func(name string, fn func(b *testing.B)) {
		withProcs(runtime.NumCPU(), func() { record(name, fn) })
	}

	// 1. Dense vs map view construction on the same workload: one
	// synchronous round of max-diffusion on a sparse G(n, p). The map
	// variant hides the DenseAutomaton methods behind StepFunc.
	for _, n := range []int{512, 2048} {
		serial(fmt.Sprintf("SyncRound/lattice/dense/n=%d", n),
			benchRound(latticeNet(seed, n)))
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnectedGNP(n, 8.0/float64(n), rng)
		init := func(v int) int { return v % latticeK }
		serial(fmt.Sprintf("SyncRound/lattice/map/n=%d", n),
			benchRound(fssga.New[int](g, fssga.StepFunc[int](lattice{latticeK}.Step), init, seed)))
	}

	// 2. Real algorithm rounds. Census engages the dense path only for
	// small sketch configurations; election and BFS are always dense.
	gC := graph.RandomConnectedGNP(512, 0.02, rand.New(rand.NewSource(seed+101)))
	if net, err := census.NewNetwork(gC.Clone(), census.Config{Bits: 4, Sketches: 3, Seed: seed}); err == nil {
		serial("SyncRound/census/dense/bits=4x3/n=512", benchRound(net))
	}
	if net, err := census.NewNetwork(gC.Clone(), census.Config{Bits: 14, Sketches: 8, Seed: seed}); err == nil {
		serial("SyncRound/census/map/bits=14x8/n=512", benchRound(net))
	}
	serial("SyncRound/election/dense/cycle/n=64",
		benchRound(election.New(graph.Cycle(64), seed).Net))
	if net, err := bfs.NewNetwork(graph.Grid(32, 32), 0, []int{1023}, seed); err == nil {
		serial("SyncRound/bfs/dense/grid/n=1024", benchRound(net))
	}

	// 3. Sharded-pool scaling on a 256x256 torus lattice, built straight
	// to CSR. The snapshot is shared across worker counts (it is
	// immutable); each worker count gets its own network so the pool is
	// created at exactly that size.
	init := func(v int) int { return v % latticeK }
	c64k := graph.TorusCSR(256, 256)
	for _, workers := range []int{1, 2, 4, 8} {
		net := fssga.NewFromCSR[int](c64k, lattice{latticeK}, init, seed)
		parallel(fmt.Sprintf("SyncRoundParallel/lattice/dense/n=65536/w=%d", workers),
			benchRoundParallel(net, workers))
		net.Close()
	}

	// 4. The million-node lattice: a 1024x1024 torus, streaming-generated
	// CSR (the map-backed graph.Graph is never materialised), serial and
	// at the full worker complement.
	c1m := graph.TorusCSR(1024, 1024)
	netSerial := fssga.NewFromCSR[int](c1m, lattice{latticeK}, init, seed)
	serial("SyncRound/lattice/dense/n=1048576", benchRound(netSerial))
	netSerial.Close()
	netPar := fssga.NewFromCSR[int](c1m, lattice{latticeK}, init, seed)
	parallel("SyncRoundParallel/lattice/dense/n=1048576/w=8",
		benchRoundParallel(netPar, 8))
	netPar.Close()

	// 5. Frontier mode on a quiesced diffusion: re-probing a converged
	// shortest-path grid is O(shards) flag scans for the parallel
	// frontier round and O(n) for the serial one, versus a full view
	// rebuild for SyncRound.
	mkQuiesced := func() *fssga.Network[shortestpath.State] {
		net, err := shortestpath.NewNetwork(graph.Grid(48, 48), []int{0}, 2304, seed)
		if err != nil {
			panic(err)
		}
		net.RunSyncUntilQuiescent(1 << 14)
		return net
	}
	qf := mkQuiesced()
	serial("QuiescedRound/shortestpath/frontier/n=2304", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qf.SyncRoundFrontier()
		}
	})
	qp := mkQuiesced()
	defer qp.Close()
	parallel("QuiescedRound/shortestpath/parallel-frontier/n=2304/w=4", func(b *testing.B) {
		b.ReportAllocs()
		qp.SyncRoundParallelFrontier(4) // warm up pool + shard metadata
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qp.SyncRoundParallelFrontier(4)
		}
	})
	qs := mkQuiesced()
	serial("QuiescedRound/shortestpath/full/n=2304", benchRound(qs))

	// 6. Checkpoint durability: snapshot-write latency (state capture,
	// envelope encode, write-ahead intent protocol into an in-memory
	// store) and restore latency (verify, decode, delta-chain
	// resolution, state reinstatement), full vs delta, on the same torus
	// lattices as the scaling series. The single-seed wavefront init
	// keeps the post-base dirty set small, so the delta series measure
	// the mode's intended sparse-change regime. All setup happens inside
	// the bodies, behind ResetTimer, so a fake measurer skips it.
	ckptInit := func(v int) int {
		if v == 0 {
			return latticeK - 1
		}
		return 0
	}
	ckptNet := func(c *graph.CSR) *fssga.Network[int] {
		net := fssga.NewFromCSR[int](c, lattice{latticeK}, ckptInit, seed)
		net.SyncRound()
		net.SyncRound()
		return net
	}
	for _, sz := range []struct {
		n int
		c *graph.CSR
	}{{65536, c64k}, {1048576, c1m}} {
		sz := sz
		serial(fmt.Sprintf("Checkpoint/write/full/n=%d", sz.n), func(b *testing.B) {
			b.ReportAllocs()
			net := ckptNet(sz.c)
			mgr := checkpoint.NewManager(net, checkpoint.NewStore(checkpoint.NewMemFS(), 2), checkpoint.Meta{Target: "lattice"})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mgr.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
		serial(fmt.Sprintf("Checkpoint/write/delta/n=%d", sz.n), func(b *testing.B) {
			b.ReportAllocs()
			net := ckptNet(sz.c)
			store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
			mgr := checkpoint.NewManager(net, store, checkpoint.Meta{Target: "lattice"})
			if err := mgr.Checkpoint(); err != nil { // base at round 2
				b.Fatal(err)
			}
			base := append([]int(nil), net.States()...)
			net.SyncRound() // round 3: a small dirty ball around node 0
			cur := net.States()
			meta := checkpoint.Meta{
				Kind: checkpoint.KindDelta, Round: net.Rounds, Nodes: len(cur),
				Seed: net.Seed(), BaseRound: net.Rounds - 1, Target: "lattice",
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The same per-call work Manager does for a delta:
				// topology hash, dirty-chunk diff, encode, commit.
				meta.TopoHash = net.Topology().ContentHash()
				pay := checkpoint.Payload[int]{Runs: deltaRuns(base, cur), RNGPos: net.RNGPositions()}
				data, err := checkpoint.Encode(meta, pay)
				if err != nil {
					b.Fatal(err)
				}
				if err := store.Write(meta.Round, data); err != nil {
					b.Fatal(err)
				}
			}
		})
		serial(fmt.Sprintf("Checkpoint/restore/full/n=%d", sz.n), func(b *testing.B) {
			b.ReportAllocs()
			net := ckptNet(sz.c)
			store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
			mgr := checkpoint.NewManager(net, store, checkpoint.Meta{Target: "lattice"})
			if err := mgr.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mgr.Restore(); err != nil {
					b.Fatal(err)
				}
			}
		})
		serial(fmt.Sprintf("Checkpoint/restore/delta/n=%d", sz.n), func(b *testing.B) {
			b.ReportAllocs()
			net := ckptNet(sz.c)
			store := checkpoint.NewStore(checkpoint.NewMemFS(), 0)
			mgr := checkpoint.NewManager(net, store, checkpoint.Meta{Target: "lattice"})
			if err := mgr.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			net.SyncRound()
			if err := mgr.CheckpointDelta(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ { // resolves the delta chain every call
				if _, err := mgr.Restore(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// 7. Hub rounds: steady-state frontier rounds on heavy-hub
	// topologies, linear neighbourhood scan vs divide-and-conquer tree
	// aggregation on the same workload. The star is the worst case (one
	// degree n-1 hub); the replicated power-law graph has a hub per
	// block, only one of which stays live.
	collectHubRounds(seed, serial)

	return results
}

// deltaRuns coalesces the dirty 64-node chunks of cur against base into
// checkpoint runs — the same chunking the checkpoint manager uses.
func deltaRuns(base, cur []int) []checkpoint.Run[int] {
	const chunk = 64
	var runs []checkpoint.Run[int]
	for lo := 0; lo < len(cur); lo += chunk {
		hi := lo + chunk
		if hi > len(cur) {
			hi = len(cur)
		}
		dirty := false
		for i := lo; i < hi; i++ {
			if base[i] != cur[i] {
				dirty = true
				break
			}
		}
		if dirty {
			runs = append(runs, checkpoint.Run[int]{Lo: lo, States: cur[lo:hi]})
		}
	}
	return runs
}

// runPerf executes the engine perf suite, writes the JSON report to
// outPath, and appends the headline subset to the trajectory file (if
// trajPath is non-empty).
func runPerf(seed int64, outPath, trajPath string, measure measureFunc) error {
	report := perfReport{
		Schema:    perfSchema,
		Generated: benchTimestamp(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seed:      seed,
		Results:   collectPerf(seed, measure),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fssga-bench: wrote %d series to %s\n", len(report.Results), outPath)
	if trajPath != "" {
		if err := appendTrajectory(trajPath, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fssga-bench: appended headline to %s\n", trajPath)
	}
	return nil
}

// trajectoryEntry is one -perf run's headline subset.
type trajectoryEntry struct {
	Generated string             `json:"generated"`
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Seed      int64              `json:"seed"`
	Headline  map[string]float64 `json:"headline_ns_per_op"`
}

// trajectoryFile is the BENCH_trajectory.json schema: one entry appended
// per `make bench-perf`, oldest first, so the headline series' history
// across PRs is a single committed artifact.
type trajectoryFile struct {
	Schema  string            `json:"schema"`
	Entries []trajectoryEntry `json:"entries"`
}

const trajectorySchema = "fssga-bench/perf-trajectory/v1"

// appendTrajectory appends the report's headline subset to the
// trajectory file, creating it if missing.
func appendTrajectory(path string, report perfReport) error {
	traj := trajectoryFile{Schema: trajectorySchema}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &traj); err != nil {
			return fmt.Errorf("trajectory file %s: %w", path, err)
		}
		if traj.Schema != trajectorySchema {
			return fmt.Errorf("trajectory file %s: unknown schema %q", path, traj.Schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	head := make(map[string]float64, len(trajectoryHeadline))
	for _, name := range trajectoryHeadline {
		for _, r := range report.Results {
			if r.Name == name {
				head[name] = r.NsPerOp
				break
			}
		}
	}
	traj.Entries = append(traj.Entries, trajectoryEntry{
		Generated: report.Generated,
		GoVersion: report.GoVersion,
		NumCPU:    report.NumCPU,
		Seed:      report.Seed,
		Headline:  head,
	})
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gatedSeries describes one series the -perfgate re-measures against the
// committed report: its name and a constructor for its benchmark body.
type gatedSeries struct {
	name  string
	bench func(seed int64) func(b *testing.B)
}

// gatedSeriesList returns the series the gate guards: the general-engine
// headline (serial lattice rounds on G(n, p)) and the aggregation-path
// headline (steady-state hub rounds on the star with tree views).
func gatedSeriesList() []gatedSeries {
	return []gatedSeries{
		{headlineSeries, func(seed int64) func(b *testing.B) {
			return benchRound(latticeNet(seed, 2048))
		}},
		{hubGateSeries, func(seed int64) func(b *testing.B) {
			return benchFrontierRound(hubBenchNet(graph.StarCSR(65536), seed, false))
		}},
	}
}

// runPerfGate is the scripts/check.sh bench regression gate: re-measure
// each gated headline series (best of three, pinned to one proc like the
// recorded baseline) and fail if it is slower than the committed
// BENCH_engine.json value by more than the tolerance factor, or if the
// hot path started allocating. One-sided on purpose — a faster machine
// or a perf win must never fail the build, only a regression.
func runPerfGate(baselinePath string, seed int64, tolerance float64, measure measureFunc, w io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf gate: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("perf gate: %s: %w", baselinePath, err)
	}
	if base.Schema != perfSchema {
		return fmt.Errorf("perf gate: %s has schema %q, want %q (regenerate with `make bench-perf`)",
			baselinePath, base.Schema, perfSchema)
	}
	for _, gs := range gatedSeriesList() {
		var baseline *perfResult
		for i := range base.Results {
			if base.Results[i].Name == gs.name {
				baseline = &base.Results[i]
				break
			}
		}
		if baseline == nil {
			return fmt.Errorf("perf gate: %s lacks the gated headline series %q (regenerate with `make bench-perf`)",
				baselinePath, gs.name)
		}

		best := math.Inf(1)
		bestAllocs := int64(math.MaxInt64)
		withProcs(1, func() {
			fn := gs.bench(seed)
			for rep := 0; rep < 3; rep++ {
				r := measure(fn)
				if ns := float64(r.NsPerOp()); ns < best {
					best = ns
				}
				if a := r.AllocsPerOp(); a < bestAllocs {
					bestAllocs = a
				}
			}
		})
		limit := baseline.NsPerOp * tolerance
		fmt.Fprintf(w, "perf gate: %s = %.0f ns/op (baseline %.0f, limit %.2fx = %.0f), %d allocs/op (baseline %d)\n",
			gs.name, best, baseline.NsPerOp, tolerance, limit, bestAllocs, baseline.AllocsPerOp)
		if best > limit {
			return fmt.Errorf("perf gate: %s regressed: %.0f ns/op exceeds %.2fx the committed %.0f ns/op",
				gs.name, best, tolerance, baseline.NsPerOp)
		}
		if bestAllocs > baseline.AllocsPerOp {
			return fmt.Errorf("perf gate: %s allocates %d objects/op, committed baseline allocates %d",
				gs.name, bestAllocs, baseline.AllocsPerOp)
		}
	}
	return nil
}

// runHub measures only the HubRound series and prints the linear/agg
// speedup per topology — the quick iteration loop for the aggregation
// subsystem (`make bench-hub`). No JSON artifacts are written.
func runHub(seed int64, measure measureFunc, w io.Writer) error {
	byName := map[string]float64{}
	serial := func(name string, fn func(b *testing.B)) {
		withProcs(1, func() {
			r := measure(fn)
			byName[name] = float64(r.NsPerOp())
			fmt.Fprintf(w, "%-32s %12.0f ns/op %8d allocs/op %10d B/op\n",
				name, float64(r.NsPerOp()), r.AllocsPerOp(), r.AllocedBytesPerOp())
		})
	}
	collectHubRounds(seed, serial)
	for _, tc := range hubCases(seed) {
		lin := byName[fmt.Sprintf("HubRound/%s/linear/n=%d", tc.topo, tc.n)]
		agg := byName[fmt.Sprintf("HubRound/%s/agg/n=%d", tc.topo, tc.n)]
		if lin > 0 && agg > 0 {
			fmt.Fprintf(w, "HubRound/%s/n=%d: linear/agg speedup %.2fx\n", tc.topo, tc.n, lin/agg)
		}
	}
	return nil
}

// benchTimestamp returns the report's generation timestamp. Honouring
// SOURCE_DATE_EPOCH (the reproducible-build convention) makes the whole
// BENCH_*.json artifact byte-reproducible when the caller pins it; the
// wall clock is only the interactive fallback.
func benchTimestamp() string {
	if s := os.Getenv("SOURCE_DATE_EPOCH"); s != "" {
		if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
			return time.Unix(sec, 0).UTC().Format(time.RFC3339)
		}
	}
	//fssga:nondet artifact metadata only; replay and digests never read the report timestamp
	return time.Now().UTC().Format(time.RFC3339)
}
