package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/algo/bfs"
	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/shortestpath"
	"repro/internal/fssga"
	"repro/internal/graph"
)

// The -perf suite measures the execution engine itself — synchronous-round
// throughput and allocation behaviour across view representations (dense
// multiplicity vectors vs the map fallback), worker counts, and the
// frontier round mode — and appends the series to a BENCH_*.json file so
// the perf trajectory is recorded alongside the experiment tables.

// perfResult is one measured series point.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// perfReport is the BENCH_*.json schema.
type perfReport struct {
	Schema     string       `json:"schema"`
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Seed       int64        `json:"seed"`
	Results    []perfResult `json:"results"`
}

// lattice is the perf suite's reference dense automaton: max-diffusion
// over states 0..K-1, implemented with closure-free observations so the
// hot path is purely view construction plus O(K) capped lookups.
type lattice struct{ k int }

func (l lattice) NumStates() int       { return l.k }
func (l lattice) StateIndex(s int) int { return s }
func (l lattice) Step(self int, view *fssga.View[int], rnd *rand.Rand) int {
	for q := l.k - 1; q > self; q-- {
		if view.AnyState(q) {
			//fssga:nondet q walks the fixed range (self, k) downward; it is bounded by the automaton's state count, not by state arithmetic
			return q
		}
	}
	return self
}

func benchRound[S comparable](net *fssga.Network[S]) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		net.SyncRound() // warm up scratch outside the measured region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.SyncRound()
		}
	}
}

// runPerf executes the engine perf suite and writes the JSON report.
func runPerf(seed int64, outPath string) error {
	var results []perfResult
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		results = append(results, perfResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Fprintf(os.Stderr, "%-44s %12.0f ns/op %8d allocs/op %10d B/op\n",
			name, float64(r.NsPerOp()), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	rng := rand.New(rand.NewSource(seed))
	const k = 16

	// 1. Dense vs map view construction on the same workload: one
	// synchronous round of max-diffusion on a sparse G(n, p). The map
	// variant hides the DenseAutomaton methods behind StepFunc.
	for _, n := range []int{512, 2048} {
		g := graph.RandomConnectedGNP(n, 8.0/float64(n), rng)
		init := func(v int) int { return v % k }
		record(fmt.Sprintf("SyncRound/lattice/dense/n=%d", n),
			benchRound(fssga.New[int](g.Clone(), lattice{k}, init, seed)))
		record(fmt.Sprintf("SyncRound/lattice/map/n=%d", n),
			benchRound(fssga.New[int](g.Clone(), fssga.StepFunc[int](lattice{k}.Step), init, seed)))
	}

	// 2. Real algorithm rounds. Census engages the dense path only for
	// small sketch configurations; election and BFS are always dense.
	gC := graph.RandomConnectedGNP(512, 0.02, rng)
	if net, err := census.NewNetwork(gC.Clone(), census.Config{Bits: 4, Sketches: 3, Seed: seed}); err == nil {
		record("SyncRound/census/dense/bits=4x3/n=512", benchRound(net))
	}
	if net, err := census.NewNetwork(gC.Clone(), census.Config{Bits: 14, Sketches: 8, Seed: seed}); err == nil {
		record("SyncRound/census/map/bits=14x8/n=512", benchRound(net))
	}
	record("SyncRound/election/dense/cycle/n=64",
		benchRound(election.New(graph.Cycle(64), seed).Net))
	if net, err := bfs.NewNetwork(graph.Grid(32, 32), 0, []int{1023}, seed); err == nil {
		record("SyncRound/bfs/dense/grid/n=1024", benchRound(net))
	}

	// 3. Parallel-round scaling with per-worker scratch.
	gP := graph.RandomConnectedGNP(4096, 0.002, rng)
	for _, workers := range []int{1, 2, 4, 8} {
		net := fssga.New[int](gP.Clone(), lattice{k}, func(v int) int { return v % k }, seed)
		w := workers
		record(fmt.Sprintf("SyncRoundParallel/lattice/dense/n=4096/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			net.SyncRoundParallel(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.SyncRoundParallel(w)
			}
		})
	}

	// 4. Frontier mode on a quiesced diffusion: re-probing a converged
	// shortest-path grid is O(n) flag scans for the frontier round versus
	// a full view rebuild for SyncRound.
	mkQuiesced := func() *fssga.Network[shortestpath.State] {
		net, err := shortestpath.NewNetwork(graph.Grid(48, 48), []int{0}, 2304, seed)
		if err != nil {
			panic(err)
		}
		net.RunSyncUntilQuiescent(1 << 14)
		return net
	}
	qf := mkQuiesced()
	record("QuiescedRound/shortestpath/frontier/n=2304", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qf.SyncRoundFrontier()
		}
	})
	qs := mkQuiesced()
	record("QuiescedRound/shortestpath/full/n=2304", benchRound(qs))

	report := perfReport{
		Schema:     "fssga-bench/perf/v1",
		Generated:  benchTimestamp(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Results:    results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fssga-bench: wrote %d series to %s\n", len(results), outPath)
	return nil
}

// benchTimestamp returns the report's generation timestamp. Honouring
// SOURCE_DATE_EPOCH (the reproducible-build convention) makes the whole
// BENCH_*.json artifact byte-reproducible when the caller pins it; the
// wall clock is only the interactive fallback.
func benchTimestamp() string {
	if s := os.Getenv("SOURCE_DATE_EPOCH"); s != "" {
		if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
			return time.Unix(sec, 0).UTC().Format(time.RFC3339)
		}
	}
	//fssga:nondet artifact metadata only; replay and digests never read the report timestamp
	return time.Now().UTC().Format(time.RFC3339)
}
