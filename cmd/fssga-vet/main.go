// Command fssga-vet runs the repository's determinism and symmetry
// analyzers (detrand, maporder, viewpure, seedplumb, globalwrite,
// symcontract, finstate, capinfer) over Go packages. It has two modes:
//
// Standalone, over go package patterns (the default is ./...):
//
//	fssga-vet [-json] [-analyzers detrand,maporder] [patterns...]
//	fssga-vet -fixtures internal/analysis/testdata/src detrand
//	fssga-vet -audit repro/...     # inventory //fssga:nondet directives
//	fssga-vet -contracts repro/... # inferred mod-thresh footprints
//
// As a go vet tool, speaking the cmd/go vet-tool protocol (-V=full,
// -flags, and a single JSON .cfg argument per unit):
//
//	go vet -vettool=$(which fssga-vet) ./...
//
// With -json, output is a versioned envelope {"schemaVersion": 2, ...}
// carrying a "findings", "directives" or "contracts" array depending on
// the mode, each in a stable sorted order.
//
// Exit status: 0 when clean, 1 when the analyzers report findings (or
// -audit finds a stale directive), 2 when loading or type-checking
// fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

const progName = "fssga-vet"

// schemaVersion tags every -json envelope; bump it when the output
// shape changes incompatibly. Version 1 was the bare findings array.
const schemaVersion = 2

type findingsEnvelope struct {
	SchemaVersion int                `json:"schemaVersion"`
	Findings      []analysis.Finding `json:"findings"`
}

type auditEnvelope struct {
	SchemaVersion int                  `json:"schemaVersion"`
	Directives    []analysis.Directive `json:"directives"`
}

type contractsEnvelope struct {
	SchemaVersion int                 `json:"schemaVersion"`
	Contracts     []analysis.Contract `json:"contracts"`
}

func emitJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go command invokes vet tools positionally, before any of our
	// own flags: `tool -V=full`, `tool -flags`, `tool <unit>.cfg`.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Fprintf(stdout, "%s version v1, deterministic build\n", progName)
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVettool(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet(progName, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a versioned JSON envelope on stdout")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers (default: all)")
	fixtureRoot := fs.String("fixtures", "", "treat patterns as fixture package names under this directory")
	audit := fs.Bool("audit", false, "list //fssga:nondet directives with audit status; exit 1 if any is stale")
	contracts := fs.Bool("contracts", false, "emit inferred mod-thresh observation contracts instead of findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [-json] [-analyzers names] [-fixtures dir] [-audit|-contracts] [patterns]\n\nAnalyzers:\n", progName)
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.Lookup(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	loader := analysis.NewLoader("")
	var units []*analysis.Unit
	if *fixtureRoot != "" {
		loader.FixtureRoot = *fixtureRoot
		for _, p := range fs.Args() {
			u, err := loader.LoadFixture(p)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			units = append(units, u)
		}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		units, err = loader.LoadPatterns(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	switch {
	case *audit:
		// Staleness is judged against the full suite, whatever -analyzers
		// selected: a directive absorbing any analyzer's diagnostic is live.
		dirs, err := analysis.AuditDirectives(units, analysis.All())
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *jsonOut {
			if code := emitJSON(stdout, stderr, auditEnvelope{schemaVersion, dirs}); code != 0 {
				return code
			}
		} else {
			for _, d := range dirs {
				fmt.Fprintln(stdout, d)
			}
		}
		stale := 0
		for _, d := range dirs {
			if d.Stale() {
				stale++
			}
		}
		if stale > 0 {
			fmt.Fprintf(stderr, "%s: %d stale //fssga:nondet directive(s) suppress nothing; remove them\n", progName, stale)
			return 1
		}
		return 0

	case *contracts:
		cs := analysis.InferContracts(units)
		if cs == nil {
			cs = []analysis.Contract{}
		}
		if *jsonOut {
			return emitJSON(stdout, stderr, contractsEnvelope{schemaVersion, cs})
		}
		for _, c := range cs {
			fmt.Fprintln(stdout, c)
		}
		return 0
	}

	findings, err := analysis.RunAnalyzers(units, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if code := emitJSON(stdout, stderr, findingsEnvelope{schemaVersion, findings}); code != 0 {
			return code
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet-tool JSON configuration the
// driver needs: one type-checkable unit with pre-resolved imports.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// lookup opens the export data for an import path as the compiler
// recorded it for this unit.
func (c *vetConfig) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := c.ImportMap[path]; ok {
		path = mapped
	}
	file, ok := c.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no package file for %q in unit %s", path, c.ImportPath)
	}
	return os.Open(file)
}

// writeVetx records the (empty) facts file the go command expects from a
// vet tool; fssga-vet's analyzers are fact-free.
func (c *vetConfig) writeVetx() error {
	if c.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(c.VetxOutput, []byte(progName+" no facts\n"), 0o666)
}

func runVettool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "%s: parsing %s: %v\n", progName, cfgPath, err)
		return 2
	}
	if cfg.VetxOnly {
		// Dependency-only visit: no diagnostics wanted, just facts.
		if err := cfg.writeVetx(); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(stderr, "%s: unsupported compiler %q\n", progName, cfg.Compiler)
		return 2
	}
	fset := token.NewFileSet()
	unit, err := analysis.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, importer.ForCompiler(fset, "gc", cfg.lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compile step will report the error; stay quiet.
			if werr := cfg.writeVetx(); werr != nil {
				fmt.Fprintln(stderr, werr)
				return 2
			}
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Unit{unit}, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := cfg.writeVetx(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
