// Command fssga-vet runs the repository's determinism, symmetry,
// hot-path and concurrency analyzers (detrand, maporder, viewpure,
// seedplumb, globalwrite, symcontract, finstate, capinfer, hotalloc,
// shardsafe, goroleak, chanprotocol, lockorder, atomicmix) over Go
// packages. It has two modes:
//
// Standalone, over go package patterns (the default is ./...):
//
//	fssga-vet [-json] [-analyzers detrand,maporder] [patterns...]
//	fssga-vet -fixtures internal/analysis/testdata/src detrand
//	fssga-vet -audit repro/...     # inventory suppression directives
//	fssga-vet -audit -ratchet scripts/suppression_ratchet.txt repro/...
//	fssga-vet -contracts repro/... # inferred mod-thresh footprints
//
// As a go vet tool, speaking the cmd/go vet-tool protocol (-V=full,
// -flags, and a single JSON .cfg argument per unit):
//
//	go vet -vettool=$(which fssga-vet) ./...
//
// With -json, output is a versioned envelope {"schemaVersion": 3, ...}
// carrying a "findings", "directives" or "contracts" array depending on
// the mode, each in a stable sorted order.
//
// Exit status: 0 when clean, 1 when the analyzers report findings (or
// -audit finds a stale directive or a suppression count above its
// -ratchet ceiling), 2 when loading or type-checking fails — including
// patterns that match no packages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

const progName = "fssga-vet"

// schemaVersion tags every -json envelope; bump it when the output
// shape changes incompatibly. Version 1 was the bare findings array;
// version 2 wrapped it in the envelope; version 3 added the "directive"
// kind field to audit entries when //fssga:alloc joined //fssga:nondet.
const schemaVersion = 3

type findingsEnvelope struct {
	SchemaVersion int                `json:"schemaVersion"`
	Findings      []analysis.Finding `json:"findings"`
}

type auditEnvelope struct {
	SchemaVersion int                  `json:"schemaVersion"`
	Directives    []analysis.Directive `json:"directives"`
}

type contractsEnvelope struct {
	SchemaVersion int                 `json:"schemaVersion"`
	Contracts     []analysis.Contract `json:"contracts"`
}

func emitJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}

// checkRatchet compares per-analyzer live-suppression counts against the
// ceilings in path (lines of "analyzer N", # comments). Every analyzer
// with suppressions must have a ceiling — an unlisted analyzer's ceiling
// is zero — so a new suppression always needs an explicit, reviewable
// ceiling bump. Counts below a ceiling are reported as a reminder to
// ratchet it down; only counts above one fail.
func checkRatchet(path string, counts map[string]int, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "%s: reading suppression ratchet: %v\n", progName, err)
		return 2
	}
	ceilings := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var n int
		if len(fields) != 2 {
			fmt.Fprintf(stderr, "%s: %s:%d: want \"analyzer count\", got %q\n", progName, path, i+1, line)
			return 2
		}
		if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
			fmt.Fprintf(stderr, "%s: %s:%d: bad count %q\n", progName, path, i+1, fields[1])
			return 2
		}
		ceilings[fields[0]] = n
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	over := 0
	for _, name := range names {
		switch c, ceil := counts[name], ceilings[name]; {
		case c > ceil:
			fmt.Fprintf(stderr, "%s: %d live %s suppression(s) exceed the ceiling of %d in %s: fix the diagnostics or raise the ceiling with a written justification\n",
				progName, c, name, ceil, path)
			over++
		case c < ceil:
			fmt.Fprintf(stderr, "%s: note: %s has %d live suppression(s), ceiling %d in %s can ratchet down\n",
				progName, name, c, ceil, path)
		}
	}
	if over > 0 {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go command invokes vet tools positionally, before any of our
	// own flags: `tool -V=full`, `tool -flags`, `tool <unit>.cfg`.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Fprintf(stdout, "%s version v1, deterministic build\n", progName)
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVettool(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet(progName, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a versioned JSON envelope on stdout")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers (default: all)")
	fixtureRoot := fs.String("fixtures", "", "treat patterns as fixture package names under this directory")
	audit := fs.Bool("audit", false, "list suppression directives with audit status; exit 1 if any is stale")
	ratchet := fs.String("ratchet", "", "with -audit: ceiling file of per-analyzer suppression counts; exceeding a ceiling exits 1")
	contracts := fs.Bool("contracts", false, "emit inferred mod-thresh observation contracts instead of findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [-json] [-analyzers names] [-fixtures dir] [-audit [-ratchet file]|-contracts] [patterns]\n\nAnalyzers:\n", progName)
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.Lookup(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	loader := analysis.NewLoader("")
	var units []*analysis.Unit
	if *fixtureRoot != "" {
		loader.FixtureRoot = *fixtureRoot
		for _, p := range fs.Args() {
			u, err := loader.LoadFixture(p)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			units = append(units, u)
		}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		units, err = loader.LoadPatterns(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if len(units) == 0 {
		// go list accepts relative patterns that match nothing with exit 0,
		// so an empty load would otherwise report a vacuously clean tree.
		what := strings.Join(fs.Args(), " ")
		if what == "" {
			what = "(no patterns)"
		}
		fmt.Fprintf(stderr, "%s: no packages matched %s\n", progName, what)
		return 2
	}

	switch {
	case *audit:
		// Staleness is judged against the full suite, whatever -analyzers
		// selected: a directive absorbing any analyzer's diagnostic is live.
		dirs, err := analysis.AuditDirectives(units, analysis.All())
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *jsonOut {
			if code := emitJSON(stdout, stderr, auditEnvelope{schemaVersion, dirs}); code != 0 {
				return code
			}
		} else {
			for _, d := range dirs {
				fmt.Fprintln(stdout, d)
			}
		}
		stale := 0
		for _, d := range dirs {
			if d.Stale() {
				stale++
			}
		}
		if stale > 0 {
			fmt.Fprintf(stderr, "%s: %d stale suppression directive(s) suppress nothing; remove them\n", progName, stale)
			return 1
		}
		if *ratchet != "" {
			return checkRatchet(*ratchet, analysis.SuppressionCounts(dirs), stderr)
		}
		return 0

	case *contracts:
		cs := analysis.InferContracts(units)
		if cs == nil {
			cs = []analysis.Contract{}
		}
		if *jsonOut {
			return emitJSON(stdout, stderr, contractsEnvelope{schemaVersion, cs})
		}
		for _, c := range cs {
			fmt.Fprintln(stdout, c)
		}
		return 0
	}

	findings, err := analysis.RunAnalyzers(units, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if code := emitJSON(stdout, stderr, findingsEnvelope{schemaVersion, findings}); code != 0 {
			return code
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet-tool JSON configuration the
// driver needs: one type-checkable unit with pre-resolved imports.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// lookup opens the export data for an import path as the compiler
// recorded it for this unit.
func (c *vetConfig) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := c.ImportMap[path]; ok {
		path = mapped
	}
	file, ok := c.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no package file for %q in unit %s", path, c.ImportPath)
	}
	return os.Open(file)
}

// writeVetx records the (empty) facts file the go command expects from a
// vet tool; fssga-vet's analyzers are fact-free.
func (c *vetConfig) writeVetx() error {
	if c.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(c.VetxOutput, []byte(progName+" no facts\n"), 0o666)
}

func runVettool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "%s: parsing %s: %v\n", progName, cfgPath, err)
		return 2
	}
	if cfg.VetxOnly {
		// Dependency-only visit: no diagnostics wanted, just facts.
		if err := cfg.writeVetx(); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(stderr, "%s: unsupported compiler %q\n", progName, cfg.Compiler)
		return 2
	}
	fset := token.NewFileSet()
	unit, err := analysis.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, importer.ForCompiler(fset, "gc", cfg.lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compile step will report the error; stay quiet.
			if werr := cfg.writeVetx(); werr != nil {
				fmt.Fprintln(stderr, werr)
				return 2
			}
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Unit{unit}, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := cfg.writeVetx(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
