package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const fixtureRoot = "../../internal/analysis/testdata/src"

// The committed tree must be clean: every violation the suite ever found
// is fixed or carries an audited //fssga:nondet directive.
func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("fssga-vet repro/... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean tree produced findings:\n%s", out.String())
	}
}

func TestKnownBadFixtureExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-fixtures", fixtureRoot, "detrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "detrand: time.Now reads the wall clock") {
		t.Fatalf("findings missing detrand diagnostic:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-fixtures", fixtureRoot, "maporder"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty findings array for a known-bad fixture")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer != "maporder" || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONEmptyArrayOnClean(t *testing.T) {
	var out, errb bytes.Buffer
	// The detrand fixture is clean under maporder, so the filter must
	// yield exit 0 and a JSON empty array, not null.
	code := run([]string{"-json", "-analyzers", "maporder", "-fixtures", fixtureRoot, "detrand"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Fatalf("error does not name the unknown analyzer:\n%s", errb.String())
	}
}

func TestVetToolProtocolEntryPoints(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "fssga-vet version") {
		t.Fatalf("-V=full output %q lacks the version prefix the go command requires", out.String())
	}
	out.Reset()
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags output = %q, want []", out.String())
	}
}

// End-to-end: build the binary and run it under `go vet -vettool` on two
// real (clean) packages, exercising the .cfg unit protocol.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "fssga-vet")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "repro/internal/baseline", "repro/internal/stats")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
