package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const fixtureRoot = "../../internal/analysis/testdata/src"

// The committed tree must be clean: every violation the suite ever found
// is fixed or carries an audited //fssga:nondet directive.
func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("fssga-vet repro/... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean tree produced findings:\n%s", out.String())
	}
}

func TestKnownBadFixtureExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-fixtures", fixtureRoot, "detrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "detrand: time.Now reads the wall clock") {
		t.Fatalf("findings missing detrand diagnostic:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-fixtures", fixtureRoot, "maporder"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var env findingsEnvelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if env.SchemaVersion != schemaVersion {
		t.Fatalf("schemaVersion = %d, want %d", env.SchemaVersion, schemaVersion)
	}
	if len(env.Findings) == 0 {
		t.Fatal("-json produced an empty findings array for a known-bad fixture")
	}
	for _, f := range env.Findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer != "maporder" || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
	if !sort.SliceIsSorted(env.Findings, func(i, j int) bool {
		a, b := env.Findings[i], env.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	}) {
		t.Fatalf("findings are not in the stable sort order:\n%s", out.String())
	}
}

func TestJSONEmptyFindingsOnClean(t *testing.T) {
	var out, errb bytes.Buffer
	// The detrand fixture is clean under maporder, so the filter must
	// yield exit 0 and an empty findings array, not null.
	code := run([]string{"-json", "-analyzers", "maporder", "-fixtures", fixtureRoot, "detrand"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Fatalf("clean -json output = %q, want an explicit empty findings array", out.String())
	}
}

// TestJSONGolden pins the -json envelope byte-for-byte: schemaVersion,
// field names, ordering and indentation are all part of the tool's
// contract with scripts/check.sh and any CI consumer. One golden per
// envelope-shaping analyzer family: maporder for the determinism suite,
// hotalloc and shardsafe for the hot-path gate, and the four
// concurrency analyzers for the concurrency gate.
func TestJSONGolden(t *testing.T) {
	for _, tc := range []struct {
		golden string
		args   []string
	}{
		{"maporder.golden.json", []string{"-json", "-fixtures", fixtureRoot, "maporder"}},
		{"hotalloc.golden.json", []string{"-json", "-analyzers", "hotalloc", "-fixtures", fixtureRoot, "hotalloc"}},
		{"shardsafe.golden.json", []string{"-json", "-analyzers", "shardsafe", "-fixtures", fixtureRoot, "shardsafe/fssga"}},
		{"goroleak.golden.json", []string{"-json", "-analyzers", "goroleak", "-fixtures", fixtureRoot, "goroleak"}},
		{"chanprotocol.golden.json", []string{"-json", "-analyzers", "chanprotocol", "-fixtures", fixtureRoot, "chanprotocol"}},
		{"lockorder.golden.json", []string{"-json", "-analyzers", "lockorder", "-fixtures", fixtureRoot, "lockorder"}},
		{"atomicmix.golden.json", []string{"-json", "-analyzers", "atomicmix", "-fixtures", fixtureRoot, "atomicmix"}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 1 {
				t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
			}
			goldenPath := filepath.Join("testdata", tc.golden)
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden file: %v (regenerate with: go run . %s > cmd/fssga-vet/%s)", err, strings.Join(tc.args, " "), goldenPath)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("-json output drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, out.String(), want)
			}
		})
	}
}

// Every committed //fssga:nondet directive must still suppress a live
// diagnostic; -audit is the gate that keeps the allowlist honest.
func TestAuditCleanTreeHasNoStaleDirectives(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-audit", "repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("fssga-vet -audit repro/... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "STALE") {
		t.Fatalf("audit reports stale directives:\n%s", out.String())
	}
	// The semilattice fold suppression is the audit's canary: it must be
	// listed, attributed to symcontract.
	found := false
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "semilattice.go") && strings.Contains(line, "symcontract") {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit listing lacks the semilattice symcontract suppression:\n%s", out.String())
	}
}

func TestAuditStaleDirectiveExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-audit", "-json", "-fixtures", fixtureRoot, "auditstale"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	var env auditEnvelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("decoding -audit -json output: %v\n%s", err, out.String())
	}
	if env.SchemaVersion != schemaVersion || len(env.Directives) != 1 {
		t.Fatalf("envelope = %+v, want schema %d with one directive", env, schemaVersion)
	}
	d := env.Directives[0]
	if !d.Stale() || d.Reason != "left behind after the offending call was removed" {
		t.Fatalf("directive = %+v, want stale with the fixture's reason", d)
	}
	// The "directive" kind field is what schemaVersion 3 added: consumers
	// distinguish //fssga:nondet from //fssga:alloc entries by it.
	if !strings.Contains(out.String(), `"directive": "//fssga:nondet"`) {
		t.Fatalf("-audit -json envelope lacks the directive kind field:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "stale") {
		t.Fatalf("stderr does not explain the failure:\n%s", errb.String())
	}
}

func TestContractsJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-contracts", "-json", "repro/internal/algo/twocolor"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errb.String())
	}
	var env contractsEnvelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("decoding -contracts -json output: %v\n%s", err, out.String())
	}
	if env.SchemaVersion != schemaVersion {
		t.Fatalf("schemaVersion = %d, want %d", env.SchemaVersion, schemaVersion)
	}
	for _, c := range env.Contracts {
		if c.Automaton == "(repro/internal/algo/twocolor.automaton).Step" {
			if !c.Bounded {
				t.Fatalf("twocolor contract unbounded: %+v", c)
			}
			return
		}
	}
	t.Fatalf("no contract for the twocolor automaton in %s", out.String())
}

// TestBadInvocationExitsTwo pins the argument-hardening contract: every
// way of pointing the tool at nothing — an unknown analyzer, a pattern
// go list rejects, a pattern that matches zero packages, a fixture that
// does not exist, or a fixture root with no patterns — must exit 2 with
// a diagnostic on stderr, never a vacuous clean exit 0.
func TestBadInvocationExitsTwo(t *testing.T) {
	for _, tc := range []struct {
		name   string
		args   []string
		stderr string // required substring of the diagnostic
	}{
		{"unknown analyzer", []string{"-analyzers", "bogus"}, "bogus"},
		{"go list failure", []string{"./no-such-dir/..."}, "no-such-dir"},
		{"nonexistent import path", []string{"repro/internal/nosuchpackage"}, "nosuchpackage"},
		{"zero-package match", []string{"-fixtures", fixtureRoot}, "no packages matched"},
		{"nonexistent fixture", []string{"-fixtures", fixtureRoot, "nosuchfixture"}, "nosuchfixture"},
		{"bad flag", []string{"-frobnicate"}, "frobnicate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
			if !strings.Contains(errb.String(), tc.stderr) {
				t.Fatalf("stderr lacks %q:\n%s", tc.stderr, errb.String())
			}
		})
	}
}

// The committed suppression ratchet must fit the committed tree exactly
// from above: the audit gate goes red the moment a suppression is added
// without a ceiling bump.
func TestAuditRatchetCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-audit", "-ratchet", "../../scripts/suppression_ratchet.txt", "repro/..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errb.String())
	}
}

func TestAuditRatchetViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name    string
		ratchet string
		code    int
		stderr  string
	}{
		{"over ceiling", "symcontract 0\n", 1, "exceed the ceiling"},
		{"unlisted analyzer is ceiling zero", "# nothing listed\n", 1, "ceiling of 0"},
		{"slack ceiling notes ratchet-down", "symcontract 99\n", 0, "can ratchet down"},
		{"malformed line", "symcontract one two\n", 2, "want \"analyzer count\""},
		{"bad count", "symcontract many\n", 2, "bad count"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			// election.go carries symcontract suppressions; scope the audit
			// to one package so the fixture ceilings stay readable.
			code := run([]string{"-audit", "-ratchet", write("r.txt", tc.ratchet), "repro/internal/algo/election"}, &out, &errb)
			if code != tc.code {
				t.Fatalf("exit %d, want %d\nstderr:\n%s", code, tc.code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.stderr) {
				t.Fatalf("stderr lacks %q:\n%s", tc.stderr, errb.String())
			}
		})
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-audit", "-ratchet", filepath.Join(dir, "missing.txt"), "repro/internal/algo/election"}, &out, &errb); code != 2 {
		t.Fatalf("missing ratchet file: exit %d, want 2\nstderr:\n%s", code, errb.String())
	}
}

func TestVetToolProtocolEntryPoints(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "fssga-vet version") {
		t.Fatalf("-V=full output %q lacks the version prefix the go command requires", out.String())
	}
	out.Reset()
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags output = %q, want []", out.String())
	}
}

// End-to-end: build the binary and run it under `go vet -vettool` on two
// real (clean) packages, exercising the .cfg unit protocol.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "fssga-vet")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "repro/internal/baseline", "repro/internal/stats")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
