package main

import "testing"

func TestBuildGraphAllNames(t *testing.T) {
	names := []string{
		"path", "cycle", "oddcycle", "grid", "torus", "complete", "star",
		"tree", "gnp", "hypercube", "barbell", "theta",
	}
	for _, name := range names {
		g, err := buildGraph(name, 24, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.NumNodes() < 2 {
			t.Errorf("%s: only %d nodes", name, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !g.Connected() {
			t.Errorf("%s: disconnected", name)
		}
	}
}

func TestBuildGraphSizes(t *testing.T) {
	g, err := buildGraph("grid", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 25 { // largest square <= 30
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	g, err = buildGraph("hypercube", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 { // largest power of two <= 30
		t.Fatalf("hypercube nodes = %d", g.NumNodes())
	}
	g, err = buildGraph("oddcycle", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes()%2 != 1 {
		t.Fatalf("oddcycle nodes = %d", g.NumNodes())
	}
}

func TestBuildGraphUnknown(t *testing.T) {
	if _, err := buildGraph("nope", 10, 1); err == nil {
		t.Fatal("unknown graph accepted")
	}
}
