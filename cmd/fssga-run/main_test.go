package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/mc"
	"repro/internal/trace"
)

func TestBuildGraphAllNames(t *testing.T) {
	names := []string{
		"path", "cycle", "oddcycle", "grid", "torus", "complete", "star",
		"tree", "gnp", "hypercube", "barbell", "theta",
	}
	for _, name := range names {
		g, err := buildGraph(name, 24, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.NumNodes() < 2 {
			t.Errorf("%s: only %d nodes", name, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !g.Connected() {
			t.Errorf("%s: disconnected", name)
		}
	}
}

func TestBuildGraphSizes(t *testing.T) {
	g, err := buildGraph("grid", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 25 { // largest square <= 30
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	g, err = buildGraph("hypercube", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 { // largest power of two <= 30
		t.Fatalf("hypercube nodes = %d", g.NumNodes())
	}
	g, err = buildGraph("oddcycle", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes()%2 != 1 {
		t.Fatalf("oddcycle nodes = %d", g.NumNodes())
	}
}

func TestBuildGraphUnknown(t *testing.T) {
	if _, err := buildGraph("nope", 10, 1); err == nil {
		t.Fatal("unknown graph accepted")
	}
}

// TestReplayVerifiesBothArtifactKinds: fssga-run -replay dispatches on
// the artifact's target, verifying chaos runs and mc counterexamples.
func TestReplayVerifiesBothArtifactKinds(t *testing.T) {
	dir := t.TempDir()

	log, err := chaos.Run(chaos.Config{
		Target: "census", Adversary: "random",
		Graph: trace.GraphSpec{Gen: "cycle", N: 8, Seed: 1},
		Seed:  7, MaxRounds: 40, AttackRounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaosPath := filepath.Join(dir, "chaos.json")
	if err := log.Save(chaosPath); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if code := replayMain(&buf, chaosPath); code != 0 {
		t.Fatalf("chaos replay exit %d:\n%s", code, buf.String())
	}

	p, err := mc.LookupPair("twocolor/cycle5")
	if err != nil {
		t.Fatal(err)
	}
	picks := []int{0, 1, 2, 3, 4}
	mcLog := &trace.RunLog{
		Target: "mc/" + p.Name, Adversary: "none", Graph: p.Spec, Seed: p.Seed,
		MaxRounds: len(picks), Rounds: len(picks), Round: len(picks),
		Events: []trace.EventRec{}, Picks: picks, Digests: p.ReplayPure(picks),
	}
	mcPath := filepath.Join(dir, "mc.json")
	if err := mcLog.Save(mcPath); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := replayMain(&buf, mcPath); code != 0 {
		t.Fatalf("mc replay exit %d:\n%s", code, buf.String())
	}
}

// TestReplayCorruptFixtures: malformed artifacts are structured non-zero
// exits, never panics.
func TestReplayCorruptFixtures(t *testing.T) {
	dir := t.TempDir()
	p, err := mc.LookupPair("twocolor/cycle5")
	if err != nil {
		t.Fatal(err)
	}
	outPicks := &trace.RunLog{
		Target: "mc/" + p.Name, Graph: p.Spec, Rounds: 1, Round: 1,
		Picks: []int{99}, Digests: []uint64{1},
	}
	outPath := filepath.Join(dir, "picks.json")
	if err := outPicks.Save(outPath); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body string // written to a file unless path overrides
		path string
		want int
	}{
		{name: "missing file", path: filepath.Join(dir, "nope.json"), want: 2},
		{name: "empty", body: "", want: 2},
		{name: "truncated", body: `{"target":"census","graph":{"gen":"cyc`, want: 2},
		{name: "not json", body: "== garbage ==", want: 2},
		{name: "bad event kind", body: `{"target":"census","graph":{"gen":"cycle","n":8},"events":[{"step":1,"kind":"?"}]}`, want: 2},
		{name: "unknown target", body: `{"target":"nonesuch","graph":{"gen":"cycle","n":8}}`, want: 1},
		{name: "mc picks out of range", path: outPath, want: 1},
	}
	for _, tc := range cases {
		path := tc.path
		if path == "" {
			path = filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var buf strings.Builder
		if code := replayMain(&buf, path); code != tc.want {
			t.Errorf("%s: exit %d, want %d:\n%s", tc.name, code, tc.want, buf.String())
		}
	}
}
