// Command fssga-run executes one FSSGA algorithm on one generated
// topology and prints the outcome — the command-line counterpart of the
// paper's demo applet.
//
// Usage:
//
//	fssga-run -algo=census   -graph=gnp   -n=128
//	fssga-run -algo=election -graph=cycle -n=32 -seed=7
//	fssga-run -algo=twocolor -graph=oddcycle -n=9
//
// Algorithms: census, shortestpath, twocolor, bfs, randomwalk, milgram,
// tourist, election, bridges.
// Graphs: path, cycle, oddcycle, grid, torus, complete, star, tree, gnp,
// hypercube, barbell, theta.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/algo/bfs"
	"repro/internal/algo/bridges"
	"repro/internal/algo/census"
	"repro/internal/algo/election"
	"repro/internal/algo/randomwalk"
	"repro/internal/algo/shortestpath"
	"repro/internal/algo/traversal"
	"repro/internal/algo/twocolor"
	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/trace"
)

func main() {
	algo := flag.String("algo", "census", "algorithm to run")
	gname := flag.String("graph", "gnp", "topology generator")
	n := flag.Int("n", 64, "approximate node count")
	seed := flag.Int64("seed", 1, "random seed")
	dot := flag.String("dot", "", "also write the topology as Graphviz DOT to this file")
	replay := flag.String("replay", "", "verify a recorded run artifact (chaos or mc) instead of running an algorithm")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayMain(os.Stdout, *replay))
	}

	g, err := buildGraph(*gname, *n, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("topology %s: %v (diameter %d)\n", *gname, g, g.Diameter())
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		if err := g.WriteDOT(f, *gname, nil); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}

	switch *algo {
	case "census":
		runCensus(g, *seed)
	case "shortestpath":
		runShortestPath(g, *seed)
	case "twocolor":
		runTwoColor(g, *seed)
	case "bfs":
		runBFS(g, *seed)
	case "randomwalk":
		runRandomWalk(g, *seed)
	case "milgram":
		runMilgram(g, *seed)
	case "tourist":
		runTourist(g, *seed)
	case "election":
		runElection(g, *seed)
	case "bridges":
		runBridges(g, *seed)
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fssga-run:", err)
	os.Exit(1)
}

// replayMain verifies a recorded artifact, dispatching on the target
// prefix: "mc/" artifacts go to the model checker's replayer, everything
// else to the chaos runner's. Malformed files are a structured non-zero
// exit (2), divergence is exit 1 — never a panic.
func replayMain(w io.Writer, path string) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(w, "fssga-run: replay of %s rejected: %v\n", path, r)
			code = 2
		}
	}()
	log, err := trace.LoadRunLog(path)
	if err != nil {
		fmt.Fprintf(w, "fssga-run: %v\n", err)
		return 2
	}
	if strings.HasPrefix(log.Target, "mc/") {
		if err := mc.VerifyReplay(log); err != nil {
			fmt.Fprintf(w, "fssga-run: replay of %s FAILED: %v\n", path, err)
			return 1
		}
		fmt.Fprintf(w, "replay of %s is bit-identical (%d activations, violation %q)\n",
			path, len(log.Picks), log.Violation)
		return 0
	}
	re, err := chaos.VerifyReplay(log)
	if err != nil {
		fmt.Fprintf(w, "fssga-run: replay of %s DIVERGED: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(w, "replay of %s is bit-identical: %d rounds, violation=%q at round %d\n",
		path, re.Rounds, re.Violation, re.Round)
	return 0
}

func buildGraph(name string, n int, seed int64) (*graph.Graph, error) {
	return graph.Build(name, n, seed)
}

func runCensus(g *graph.Graph, seed int64) {
	cfg := census.Config{Bits: 14, Sketches: 8, Seed: seed}
	res, err := census.Run(g, cfg, 20*g.NumNodes())
	if err != nil {
		fail(err)
	}
	v := 0
	for !g.Alive(v) {
		v++
	}
	fmt.Printf("census: converged=%v rounds=%d estimate=%.1f (true n=%d)\n",
		res.Converged, res.Rounds, res.Estimates[v], g.NumNodes())
}

func runShortestPath(g *graph.Graph, seed int64) {
	res, err := shortestpath.Run(g, []int{0}, 20*g.NumNodes(), seed)
	if err != nil {
		fail(err)
	}
	max := 0
	for v := 0; v < g.Cap(); v++ {
		if g.Alive(v) && res.Labels[v] > max && res.Labels[v] < g.NumNodes() {
			max = res.Labels[v]
		}
	}
	fmt.Printf("shortestpath: converged=%v rounds=%d max label=%d (ecc oracle=%d)\n",
		res.Converged, res.Rounds, max, g.Eccentricity(0))
}

func runTwoColor(g *graph.Graph, seed int64) {
	res := twocolor.Run(g, 0, 40*g.NumNodes(), seed)
	fmt.Printf("twocolor: converged=%v bipartite=%v rounds=%d (oracle=%v)\n",
		res.Converged, res.Bipartite, res.Rounds, g.IsBipartite())
}

func runBFS(g *graph.Graph, seed int64) {
	target := g.Cap() - 1
	for !g.Alive(target) {
		target--
	}
	res, err := bfs.Run(g, 0, []int{target}, 40*g.NumNodes(), seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("bfs: target=%d found=%v rounds=%d (dist oracle=%d)\n",
		target, res.Found, res.Rounds, g.BFSDistances(0)[target])
}

func runRandomWalk(g *graph.Graph, seed int64) {
	tr, err := randomwalk.New(g, 0, seed)
	if err != nil {
		fail(err)
	}
	moves, ok := tr.RunMoves(20, 1000000)
	fmt.Printf("randomwalk: moves=%d ok=%v trajectory=%v rounds=%d\n",
		moves, ok, tr.Trajectory, tr.Net.Rounds)
}

func runMilgram(g *graph.Graph, seed int64) {
	tr, err := traversal.NewMilgram(g, 0, seed)
	if err != nil {
		fail(err)
	}
	rounds, done := tr.Run(40000 * g.NumNodes())
	fmt.Printf("milgram: completed=%v rounds=%d hand moves=%d (2n-2=%d) visited=%d/%d\n",
		done, rounds, tr.HandMoves, 2*g.NumNodes()-2, tr.VisitedCount(), g.NumNodes())
}

func runTourist(g *graph.Graph, seed int64) {
	tr, err := traversal.NewTourist(g, 0, seed)
	if err != nil {
		fail(err)
	}
	done := tr.Run(200 * g.NumNodes())
	fmt.Printf("tourist: completed=%v moves=%d charged rounds=%d visited=%d/%d\n",
		done, tr.Moves, tr.Rounds, tr.VisitedCount(), g.NumNodes())
}

func runElection(g *graph.Graph, seed int64) {
	tr := election.New(g, seed)
	rounds, ok := tr.Run(100000*g.NumNodes(), 3*g.NumNodes()+10)
	fmt.Printf("election: elected=%v leaders=%v rounds=%d phases=%d remaining=%d\n",
		ok, tr.Leaders(), rounds, tr.Phases, tr.Remaining())
}

func runBridges(g *graph.Graph, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	res := bridges.Run(g, 0, 4, rng)
	fmt.Printf("bridges: steps=%d candidates=%v exact=%v (oracle=%v)\n",
		res.Steps, res.Candidates, res.TrueSet, g.Bridges())
}
