GO ?= go

.PHONY: check build test cover lint audit vet-self contracts race chaos-race chaos-smoke crash-soak mc-smoke bench perf bench-perf bench-hub perf-gate

# Tier-1 verify path (ROADMAP.md): gofmt + build + vet + tests + race.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full test suite with statement coverage, checked against the
# per-package floors in scripts/coverage_ratchet.txt.
cover:
	./scripts/coverage.sh

# Determinism, symmetry, model-contract, hot-path and concurrency
# static analyzers (internal/analysis) via the fssga-vet multichecker:
# detrand, maporder, viewpure, seedplumb, globalwrite, symcontract,
# finstate, capinfer, hotalloc, shardsafe, goroleak, chanprotocol,
# lockorder, atomicmix. Exit 1 on any finding not carrying an audited
# //fssga:nondet, //fssga:alloc or //fssga:conc directive.
lint:
	$(GO) run ./cmd/fssga-vet repro/...
	$(GO) run ./cmd/fssga-vet -audit -ratchet scripts/suppression_ratchet.txt repro/... > /dev/null

# Inventory the //fssga:nondet, //fssga:alloc and //fssga:conc
# suppression directives with the analyzers each one absorbs; exit 1 if
# any directive is stale
# or a per-analyzer count exceeds its scripts/suppression_ratchet.txt
# ceiling.
audit:
	$(GO) run ./cmd/fssga-vet -audit -ratchet scripts/suppression_ratchet.txt repro/...

# Run the analyzer suite over its own implementation and driver: the
# analysis framework must hold itself to the determinism contracts it
# enforces on the engine.
vet-self:
	$(GO) run ./cmd/fssga-vet repro/internal/analysis/... repro/cmd/fssga-vet

# Statically inferred mod-thresh observation footprints (Theorem 3.7
# normal form), cross-checked dynamically in internal/mc witness tests.
contracts:
	$(GO) run ./cmd/fssga-vet -contracts -json repro/internal/...

# Race detector over the engine and algorithm layers — the packages with
# goroutine-parallel rounds and per-worker scratch.
race:
	$(GO) test -race ./internal/fssga/... ./internal/algo/...

# Race detector over the adversarial harness and fault layer (the chaos
# runner drives goroutine-parallel rounds through the pre-round hook).
chaos-race:
	$(GO) test -race ./internal/chaos/... ./internal/faults/...

# The CI chaos gate: seeded adversarial campaign with sensitivity-derived
# expectations; non-zero exit + artifact on any unexpected outcome. Runs
# in seconds, inside the tier-1 time budget.
chaos-smoke:
	$(GO) run ./cmd/fssga-chaos -smoke -out $(shell mktemp -d)

# The CI durability gate: crash the checkpointing soak at every
# filesystem write unit, reboot, and require bit-identical resumption or
# a loud checksum refusal — plus a bit-flip corruption pass. Seconds.
crash-soak:
	$(GO) run ./cmd/fssga-chaos -crash

# The CI model-checking gate: exhaustive Theorem 3.7 sweep at the smoke
# bound plus interleaving exploration of the deterministic algorithm /
# topology pairs. Seconds, inside the tier-1 time budget.
mc-smoke:
	$(GO) run ./cmd/fssga-mc -smoke -out $(shell mktemp -d)

bench:
	$(GO) test -bench . -benchmem -run xxx .

# Engine perf series (ns/op + allocs/op) recorded to BENCH_engine.json,
# with the headline subset appended to BENCH_trajectory.json. Serial
# series are pinned to GOMAXPROCS=1; parallel series run at NumCPU.
bench-perf:
	$(GO) run ./cmd/fssga-bench -perf -out BENCH_engine.json -trajectory BENCH_trajectory.json

perf: bench-perf

# Hub-round series only: steady-state frontier rounds on heavy-hub
# topologies, linear view scans vs divide-and-conquer tree aggregation,
# with the linear/agg speedups printed. The fast iteration loop for the
# aggregation subsystem; writes no JSON artifacts.
bench-hub:
	$(GO) run ./cmd/fssga-bench -hub

# The check.sh bench regression gate, standalone: re-measure the gated
# headline series and fail if any is >1.6x slower than the committed report.
perf-gate:
	$(GO) run ./cmd/fssga-bench -perfgate
