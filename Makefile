GO ?= go

.PHONY: check build test race chaos-race chaos-smoke bench perf

# Tier-1 verify path (ROADMAP.md): gofmt + build + vet + tests + race.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the engine and algorithm layers — the packages with
# goroutine-parallel rounds and per-worker scratch.
race:
	$(GO) test -race ./internal/fssga/... ./internal/algo/...

# Race detector over the adversarial harness and fault layer (the chaos
# runner drives goroutine-parallel rounds through the pre-round hook).
chaos-race:
	$(GO) test -race ./internal/chaos/... ./internal/faults/...

# The CI chaos gate: seeded adversarial campaign with sensitivity-derived
# expectations; non-zero exit + artifact on any unexpected outcome. Runs
# in seconds, inside the tier-1 time budget.
chaos-smoke:
	$(GO) run ./cmd/fssga-chaos -smoke -out $(shell mktemp -d)

bench:
	$(GO) test -bench . -benchmem -run xxx .

# Engine perf series (ns/op + allocs/op) recorded to BENCH_engine.json.
perf:
	$(GO) run ./cmd/fssga-bench -perf -out BENCH_engine.json
