GO ?= go

.PHONY: check build test race bench perf

# Tier-1 verify path (ROADMAP.md): gofmt + build + vet + tests + race.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the engine and algorithm layers — the packages with
# goroutine-parallel rounds and per-worker scratch.
race:
	$(GO) test -race ./internal/fssga/... ./internal/algo/...

bench:
	$(GO) test -bench . -benchmem -run xxx .

# Engine perf series (ns/op + allocs/op) recorded to BENCH_engine.json.
perf:
	$(GO) run ./cmd/fssga-bench -perf -out BENCH_engine.json
